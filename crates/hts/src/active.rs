//! Active-learning campaign driver: the surrogate-in-the-loop funnel.
//!
//! The paper's funnel is static — filter, dock, rescore, each stage
//! budgeted up front. This driver closes the loop instead: a cheap
//! fingerprint-MLP surrogate (`dfsurrogate`) ranks the whole library,
//! the top slice of that ranking is routed into real docking jobs, the
//! newly docked poses become training labels, and the retrained surrogate
//! is hot-swapped in for the next epoch's ranking. Each epoch the
//! surrogate gets better exactly where the campaign is spending its
//! docking budget, which is what makes a 10% budget recover most of the
//! true top binders (`surrogate_bench` quantifies this as enrichment
//! factor and hit-recall@k).
//!
//! ## One epoch
//!
//! 1. **Surrogate pass.** The library is scored by the *published*
//!    surrogate generation, dispatched as [`TaskClass::Surrogate`] jobs
//!    through the heterogeneous scheduler — the pass rides the surrogate
//!    stride lane, bundles (32-compound jobs cost 64 ≤ the bundle cap)
//!    and respects lane backpressure like any other campaign stage. The
//!    pass is cheap and bit-deterministic given the weights, so it is
//!    *not* journaled; a resumed driver recomputes it.
//! 2. **Selection.** Compounds are ranked (prediction ascending, index
//!    tiebreak); the best `dock_fraction` of the library not yet docked
//!    becomes the epoch's shortlist, minus an `explore_fraction` wedge
//!    filled by a seeded hash ranking over the remainder so the labeled
//!    pool is not purely top-slice biased.
//! 3. **Dock.** The shortlist coalesces into contiguous dock-class jobs
//!    via the same [`coalesce_ranges`] splitter the prefilter uses, and
//!    runs under [`resume_campaign`] against the campaign's checkpoint
//!    manifest — node failures retry, completed jobs journal, and a
//!    killed driver re-docks nothing.
//! 4. **Label + retrain.** Each docked compound contributes one label
//!    (its best pose score); the surrogate retrains **from scratch** on
//!    the cumulative pool under an epoch-derived seed (fine-tuning would
//!    make the final weights depend on the crash/retrain history;
//!    from-scratch training is a pure function of the pool).
//! 5. **Hot-swap + journal.** The new weights publish through the
//!    [`SurrogateRegistry`] and the epoch's cheap-but-order-sensitive
//!    state (generation, snapshot hash, docked set, pool size) journals
//!    as a [`ManifestEntry::Epoch`] marker in the same manifest.
//!
//! ## Crash/resume contract
//!
//! Expensive state (docked poses) is journaled per job by the scheduler;
//! cheap state (surrogate passes, rankings, training) is recomputed on
//! resume and **asserted** against the journaled epoch markers — a
//! resumed campaign that would diverge from its pre-crash self fails
//! loudly with [`CheckpointError::Restore`] instead of silently
//! re-ranking. The final report's ranking digest is therefore
//! bit-identical whether the driver ran straight through or was killed
//! and resumed at any point, including between retrain and hot-swap
//! (the fault-matrix suite drives exactly that seam).

use crate::checkpoint::{CheckpointError, CheckpointWriter, EpochState, ManifestEntry};
use crate::h5lite::ScoreRecord;
use crate::job::{JobConfig, JobError, JobOutput, JobSpec, JobTiming, PoseSource, TaskClass};
use crate::prefilter::coalesce_ranges;
use crate::scheduler::{resume_campaign, run_campaign_with, SchedulerConfig};
use crate::scorer::ScorerFactory;
use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use dfchem::screen::RankedCompound;
use dfsurrogate::{
    featurize_compound, snapshot_hash, train, LabeledExample, SurrogateConfig, SurrogateRegistry,
    TrainConfig, TrainReport,
};
use dftensor::rng::derive_seed;
use std::path::Path;
use std::time::Duration;

/// Job-id block per epoch: surrogate passes take `epoch * EPOCH_STRIDE +
/// i`, dock jobs `epoch * EPOCH_STRIDE + DOCK_ID_OFFSET + i`, and the
/// final re-rank pass uses the block after the last epoch. Ids never
/// collide across epochs or stages as long as a single stage stays under
/// `DOCK_ID_OFFSET` jobs — far beyond any realistic epoch.
const EPOCH_STRIDE: u64 = 1_000_000;
/// Offset of the dock-job id block within an epoch's id block.
const DOCK_ID_OFFSET: u64 = 500_000;

/// Configuration of an active-learning screening campaign.
#[derive(Debug, Clone)]
pub struct ActiveLearningConfig {
    /// Library to screen.
    pub library: Library,
    /// Library size (indices `0..num_compounds`).
    pub num_compounds: u64,
    /// Campaign seed: compounds, pockets and poses materialize under it.
    pub campaign_seed: u64,
    /// Target pocket every dock job scores against.
    pub target: TargetSite,
    /// Active-learning epochs (each: rank → dock top slice → retrain).
    pub epochs: u64,
    /// Fraction of the library docked **per epoch** (the per-epoch
    /// budget); total docking budget ≈ `epochs × dock_fraction`.
    pub dock_fraction: f64,
    /// Fraction of each epoch's budget spent on *exploration*: compounds
    /// drawn by a seeded hash ranking over the not-yet-docked remainder
    /// instead of the surrogate's top slice (epsilon-greedy). Pure
    /// exploitation trains every retrain on a top-slice-biased pool and
    /// the tail ranking collapses; a small random wedge keeps the labeled
    /// pool covering the full score range. `0.0` = pure exploitation.
    pub explore_fraction: f64,
    /// Surrogate architecture + featurization + init seed.
    pub surrogate: SurrogateConfig,
    /// Surrogate training hyper-parameters; the shuffle seed is re-derived
    /// per epoch (`derive_seed(train.seed, epoch)`).
    pub train: TrainConfig,
    /// Compounds per surrogate-pass job. The default (32) makes each job
    /// estimate at 64 cost units — exactly the scheduler's default bundle
    /// cap — so surrogate passes bundle.
    pub compounds_per_surrogate_job: u64,
    /// Cap on compounds per dock job (0 = unbounded); shortlist runs are
    /// split balanced at this cap via [`coalesce_ranges`].
    pub max_compounds_per_dock_job: u64,
    /// Scheduler shape shared by the surrogate and dock stages.
    pub sched: SchedulerConfig,
}

impl ActiveLearningConfig {
    /// A small deterministic configuration for tests and benches: a tiny
    /// surrogate, 2 epochs, 1/8 of the library docked per epoch.
    pub fn tiny(library: Library, num_compounds: u64, campaign_seed: u64) -> ActiveLearningConfig {
        ActiveLearningConfig {
            library,
            num_compounds,
            campaign_seed,
            target: TargetSite::Spike1,
            epochs: 2,
            dock_fraction: 0.125,
            explore_fraction: 0.25,
            surrogate: SurrogateConfig::tiny(campaign_seed),
            train: TrainConfig { epochs: 12, ..TrainConfig::default() },
            compounds_per_surrogate_job: 32,
            max_compounds_per_dock_job: 8,
            sched: SchedulerConfig::default(),
        }
    }

    /// Per-epoch docking budget in compounds (at least 1).
    pub fn epoch_budget(&self) -> usize {
        ((self.num_compounds as f64 * self.dock_fraction).ceil() as usize).max(1)
    }
}

/// One epoch's outcome.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Surrogate generation published by this epoch's hot-swap.
    pub generation: u64,
    /// `snapshot_hash` of the published weights.
    pub snapshot_hash: u64,
    /// Compounds this epoch routed into docking.
    pub docked: usize,
    /// Cumulative labeled-pool size after this epoch.
    pub pool_size: usize,
    /// Training accounting of the epoch's from-scratch retrain.
    pub train: TrainReport,
    /// Dock jobs restored from the manifest instead of re-run.
    pub dock_jobs_resumed: usize,
    /// Whether a journaled epoch marker existed and was verified.
    pub verified_against_journal: bool,
}

/// The campaign's final outcome.
#[derive(Debug)]
pub struct ActiveCampaignReport {
    /// Per-epoch accounting, in epoch order.
    pub epochs: Vec<EpochReport>,
    /// Final ranking over the whole library, strongest (most negative)
    /// first: docked compounds carry their true best pose score,
    /// undocked ones the final surrogate's prediction.
    pub ranking: Vec<RankedCompound>,
    /// Every docked compound index, ascending.
    pub docked: Vec<u64>,
    /// Generation of the surrogate that produced the final re-rank.
    pub final_generation: u64,
    /// FNV-1a digest over the final ranking's `(index, score bits)`
    /// stream — the single number two runs must agree on bit for bit.
    pub ranking_digest: u64,
    /// Worker dispatches that pulled surrogate jobs, across all passes.
    pub surrogate_dispatches: u64,
    /// Surrogate jobs that rode in multi-job bundles, across all passes.
    pub surrogate_bundled_jobs: u64,
}

/// Where [`run_active_campaign_aborting`] kills the driver, for
/// crash/resume testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortPoint {
    /// Run to completion.
    None,
    /// Return early after the given epoch's retrain but **before** its
    /// hot-swap and epoch journal entry — the narrowest recovery seam:
    /// the epoch's dock jobs are journaled, its weights are not.
    BeforePublish {
        /// The epoch whose publish is skipped.
        epoch: u64,
    },
}

/// FNV-1a 64-bit over a byte stream (digesting rankings).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Digest of a ranking: FNV-1a over each entry's index and exact score
/// bits, in rank order.
pub fn ranking_digest(ranking: &[RankedCompound]) -> u64 {
    let mut bytes = Vec::with_capacity(ranking.len() * 16);
    for r in ranking {
        bytes.extend_from_slice(&r.index.to_le_bytes());
        bytes.extend_from_slice(&r.score.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Runs (or resumes) an active-learning campaign against the checkpoint
/// manifest at `manifest_path`. See the module docs for the loop and the
/// crash/resume contract.
pub fn run_active_campaign(
    cfg: &ActiveLearningConfig,
    job_cfg: &JobConfig,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
    manifest_path: impl AsRef<Path>,
) -> Result<ActiveCampaignReport, CheckpointError> {
    run_active_campaign_aborting(cfg, job_cfg, factory, source, manifest_path, AbortPoint::None)
        .map(|r| r.expect("AbortPoint::None always completes"))
}

/// [`run_active_campaign`] with an injected crash point. Returns
/// `Ok(None)` when the abort fired (the "killed driver" outcome) and
/// `Ok(Some(report))` on completion.
pub fn run_active_campaign_aborting(
    cfg: &ActiveLearningConfig,
    job_cfg: &JobConfig,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
    manifest_path: impl AsRef<Path>,
    abort: AbortPoint,
) -> Result<Option<ActiveCampaignReport>, CheckpointError> {
    let _span = dftrace::span("hts.active.campaign");
    let manifest_path = manifest_path.as_ref();
    assert!(cfg.num_compounds > 0, "cannot screen an empty library");
    assert!(cfg.dock_fraction > 0.0 && cfg.dock_fraction <= 1.0, "dock_fraction must be in (0, 1]");
    assert!((0.0..=1.0).contains(&cfg.explore_fraction), "explore_fraction must be in [0, 1]");

    // Journaled epoch markers from a previous (crashed) driver, if any.
    let journaled_epochs: Vec<EpochState> = if manifest_path.exists() {
        crate::checkpoint::load_manifest(manifest_path)?
            .entries
            .into_iter()
            .filter_map(|e| match e {
                ManifestEntry::Epoch { state } => Some(state),
                _ => None,
            })
            .collect()
    } else {
        Vec::new()
    };

    let registry = SurrogateRegistry::new(cfg.surrogate.clone());
    let mut labeled: Vec<LabeledExample> = Vec::new();
    let mut docked_all: Vec<u64> = Vec::new();
    let mut true_label: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut epoch_reports: Vec<EpochReport> = Vec::new();
    let mut surrogate_dispatches = 0u64;
    let mut surrogate_bundled_jobs = 0u64;

    for epoch in 0..cfg.epochs {
        // 1. Surrogate pass over the whole library under the published
        //    generation (epoch 0 ranks with the untrained init — that is
        //    the cold-start baseline active learning improves on).
        let (preds, lane) = surrogate_pass(cfg, &registry, epoch * EPOCH_STRIDE);
        surrogate_dispatches += lane.0;
        surrogate_bundled_jobs += lane.1;

        // 2. Selection: split the epoch budget between exploitation (the
        //    best-predicted compounds not yet docked, prediction ascending,
        //    index as the tiebreak) and exploration (a seeded hash ranking
        //    over the remainder, so the labeled pool keeps covering the
        //    full score range).
        let budget = cfg.epoch_budget();
        let explore_n = ((budget as f64 * cfg.explore_fraction).round() as usize).min(budget);
        let exploit_n = budget - explore_n;
        let mut order: Vec<u64> =
            (0..cfg.num_compounds).filter(|i| !true_label.contains_key(i)).collect();
        order.sort_by(|&a, &b| {
            preds[a as usize]
                .partial_cmp(&preds[b as usize])
                .expect("surrogate predictions are finite")
                .then(a.cmp(&b))
        });
        let mut shortlist: Vec<u64> = order.iter().copied().take(exploit_n).collect();
        if explore_n > 0 && order.len() > exploit_n {
            let salt = derive_seed(cfg.campaign_seed, 0xE890_1027 ^ epoch);
            let mut rest: Vec<u64> = order[exploit_n..].to_vec();
            rest.sort_by_key(|&i| {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&salt.to_le_bytes());
                bytes[8..].copy_from_slice(&i.to_le_bytes());
                (fnv1a64(&bytes), i)
            });
            shortlist.extend(rest.into_iter().take(explore_n));
        }
        shortlist.sort_unstable();
        dftrace::counter_add("hts.active.selected", shortlist.len() as u64);

        // 3. Dock the shortlist through the journaled scheduler. The
        //    shared splitter keeps job shapes identical to what a
        //    prefilter shortlist would produce.
        let dock_specs: Vec<JobSpec> =
            coalesce_ranges(shortlist.clone(), cfg.max_compounds_per_dock_job)
                .into_iter()
                .enumerate()
                .map(|(i, (first_compound, num_compounds))| JobSpec {
                    job_id: epoch * EPOCH_STRIDE + DOCK_ID_OFFSET + i as u64,
                    target: cfg.target,
                    library: cfg.library,
                    first_compound,
                    num_compounds,
                    campaign_seed: cfg.campaign_seed,
                    class: TaskClass::Dock,
                    attempt: 0,
                })
                .collect();
        let dock =
            resume_campaign(&cfg.sched, job_cfg, dock_specs, factory, source, manifest_path)?;
        if !dock.abandoned.is_empty() {
            return Err(CheckpointError::Restore(format!(
                "epoch {epoch}: {} dock jobs exhausted their attempts; the labeled pool \
                 would be incomplete",
                dock.abandoned.len()
            )));
        }

        // 4. Labels: best (lowest) pose score per newly docked compound,
        //    appended in index order so the pool is a pure function of
        //    the docked set.
        for out in &dock.outputs {
            for rec in &out.records {
                let entry = true_label.entry(rec.compound.index).or_insert(f64::INFINITY);
                *entry = entry.min(rec.score);
            }
        }
        for &i in &shortlist {
            let label = *true_label.get(&i).expect("docked compound has at least one pose");
            let (_, features) =
                featurize_compound(&cfg.surrogate.fingerprint, cfg.library, i, cfg.campaign_seed);
            labeled.push(LabeledExample { index: i, features, label: label as f32 });
        }
        labeled.sort_by_key(|ex| ex.index);
        docked_all.extend_from_slice(&shortlist);
        dftrace::counter_add("hts.active.docked", shortlist.len() as u64);
        dftrace::gauge_set("hts.active.pool", labeled.len() as f64);

        // 5. Retrain from scratch on the cumulative pool, then hot-swap.
        let (model, mut ps) = cfg.surrogate.build();
        let tcfg = TrainConfig { seed: derive_seed(cfg.train.seed, epoch), ..cfg.train.clone() };
        let train_report = train(&model, &mut ps, &tcfg, &labeled);
        let snap = ps.snapshot();
        let hash = snapshot_hash(&snap);

        if abort == (AbortPoint::BeforePublish { epoch }) {
            // The injected driver kill: dock jobs are journaled, the
            // retrained weights are not — they die with this process.
            dftrace::counter_add("hts.active.aborted", 1);
            return Ok(None);
        }

        let generation =
            registry.publish(&snap).map_err(|e| CheckpointError::Restore(e.to_string()))?;
        let state = EpochState {
            epoch,
            generation,
            snapshot_hash: hash,
            labeled: labeled.len() as u64,
            docked: shortlist.clone(),
        };

        // A resumed driver must land exactly where the crashed one did:
        // the recomputed epoch is checked against its journaled marker.
        let verified = match journaled_epochs.iter().find(|s| s.epoch == epoch) {
            Some(prev) => {
                if *prev != state {
                    return Err(CheckpointError::Restore(format!(
                        "epoch {epoch} diverged from its journaled marker: recomputed \
                         {state:?}, journal says {prev:?}"
                    )));
                }
                true
            }
            None => {
                let (mut writer, _) = CheckpointWriter::open_or_create(manifest_path)?;
                writer.append(&ManifestEntry::Epoch { state })?;
                false
            }
        };
        dftrace::counter_add("hts.active.epochs", 1);
        epoch_reports.push(EpochReport {
            epoch,
            generation,
            snapshot_hash: hash,
            docked: shortlist.len(),
            pool_size: labeled.len(),
            train: train_report,
            dock_jobs_resumed: dock.jobs_resumed,
            verified_against_journal: verified,
        });
    }

    // Final re-rank under the last published generation: true scores for
    // docked compounds, predictions for the rest.
    let (preds, lane) = surrogate_pass(cfg, &registry, cfg.epochs * EPOCH_STRIDE);
    surrogate_dispatches += lane.0;
    surrogate_bundled_jobs += lane.1;
    let mut ranking: Vec<RankedCompound> = (0..cfg.num_compounds)
        .map(|i| RankedCompound {
            index: i,
            score: true_label.get(&i).copied().unwrap_or(preds[i as usize]),
        })
        .collect();
    ranking.sort_by(|a, b| {
        a.score.partial_cmp(&b.score).expect("scores are finite").then(a.index.cmp(&b.index))
    });
    docked_all.sort_unstable();
    let digest = ranking_digest(&ranking);
    dftrace::gauge_set("hts.active.ranking_digest", digest as f64);

    Ok(Some(ActiveCampaignReport {
        epochs: epoch_reports,
        ranking,
        docked: docked_all,
        final_generation: registry.current().generation,
        ranking_digest: digest,
        surrogate_dispatches,
        surrogate_bundled_jobs,
    }))
}

/// One surrogate pass over the whole library as scheduler-dispatched
/// [`TaskClass::Surrogate`] jobs under the registry's live generation.
/// Returns the per-compound predictions (indexed by compound) and the
/// surrogate lane's `(dispatches, bundled_jobs)` for the pass.
fn surrogate_pass(
    cfg: &ActiveLearningConfig,
    registry: &SurrogateRegistry,
    first_job_id: u64,
) -> (Vec<f64>, (u64, u64)) {
    let _span = dftrace::span("hts.active.surrogate_pass");
    let live = registry.current();
    let model = registry.model();
    let per_job = cfg.compounds_per_surrogate_job.max(1);
    let specs: Vec<JobSpec> = (0..cfg.num_compounds.div_ceil(per_job))
        .map(|j| JobSpec {
            job_id: first_job_id + j,
            target: cfg.target,
            library: cfg.library,
            first_compound: j * per_job,
            num_compounds: per_job.min(cfg.num_compounds - j * per_job),
            campaign_seed: cfg.campaign_seed,
            class: TaskClass::Surrogate,
            attempt: 0,
        })
        .collect();
    let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
        let indices: Vec<u64> =
            (spec.first_compound..spec.first_compound + spec.num_compounds).collect();
        let rows: Vec<Vec<f32>> = indices
            .iter()
            .map(|&i| {
                featurize_compound(&cfg.surrogate.fingerprint, spec.library, i, spec.campaign_seed)
                    .1
            })
            .collect();
        let scores = model.predict(&live.params, &rows);
        let records: Vec<ScoreRecord> = indices
            .iter()
            .zip(&scores)
            .map(|(&index, &score)| ScoreRecord {
                compound: CompoundId { library: spec.library, index },
                target: spec.target,
                pose_rank: 0,
                score: f64::from(score),
            })
            .collect();
        let n = records.len();
        Ok(JobOutput {
            job_id: spec.job_id,
            records,
            files: Vec::new(),
            faults: Vec::new(),
            write_retries: 0,
            timing: JobTiming {
                startup: Duration::ZERO,
                evaluate: Duration::ZERO,
                output: Duration::ZERO,
                poses_evaluated: n,
            },
        })
    };
    let report = run_campaign_with(&cfg.sched, specs, &runner);
    debug_assert!(report.abandoned.is_empty(), "surrogate jobs never fail");
    let mut preds = vec![0.0f64; cfg.num_compounds as usize];
    for out in &report.outputs {
        for rec in &out.records {
            preds[rec.compound.index as usize] = rec.score;
        }
    }
    let lane = &report.lanes[TaskClass::Surrogate.lane()];
    dftrace::counter_add("hts.active.surrogate_scored", cfg.num_compounds);
    (preds, (lane.dispatches, lane.bundled_jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::job::SyntheticPoseSource;
    use crate::scorer::VinaScorerFactory;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfactive_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_cfg() -> ActiveLearningConfig {
        let mut cfg = ActiveLearningConfig::tiny(Library::Chembl, 48, 21);
        cfg.train.epochs = 6;
        cfg
    }

    fn job_cfg(dir: PathBuf) -> JobConfig {
        JobConfig {
            nodes: 1,
            ranks_per_node: 2,
            batch_size: 4,
            output_dir: dir,
            faults: FaultConfig::default(),
        }
    }

    #[test]
    fn campaign_runs_epochs_and_ranks_the_whole_library() {
        let dir = tmpdir("basic");
        let cfg = tiny_cfg();
        let report = run_active_campaign(
            &cfg,
            &job_cfg(dir.clone()),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
            dir.join("campaign.dfcp"),
        )
        .unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.docked.len(), 2 * cfg.epoch_budget());
        assert_eq!(report.ranking.len(), 48, "the final ranking covers the library");
        assert_eq!(report.final_generation, 2, "one hot-swap per epoch");
        for (e, ep) in report.epochs.iter().enumerate() {
            assert_eq!(ep.epoch, e as u64);
            assert_eq!(ep.generation, e as u64 + 1);
            assert_eq!(ep.docked, cfg.epoch_budget());
            assert!(!ep.verified_against_journal, "a fresh run journals, it does not verify");
        }
        // Epoch 1's pool doubles epoch 0's: the budget is disjoint.
        assert_eq!(report.epochs[1].pool_size, 2 * report.epochs[0].pool_size);
        // The ranking is sorted ascending with the index tiebreak.
        for w in report.ranking.windows(2) {
            assert!((w[0].score, w[0].index) <= (w[1].score, w[1].index));
        }
        // Surrogate passes rode the surrogate lane in bundles.
        assert!(report.surrogate_dispatches > 0);
        assert!(
            report.surrogate_bundled_jobs > 0,
            "32-compound surrogate jobs must bundle under the recalibrated cost weight"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_campaigns_produce_identical_digests() {
        let d1 = tmpdir("det1");
        let d2 = tmpdir("det2");
        let cfg = tiny_cfg();
        let run = |dir: &PathBuf| {
            run_active_campaign(
                &cfg,
                &job_cfg(dir.clone()),
                &VinaScorerFactory,
                &SyntheticPoseSource { poses_per_compound: 2 },
                dir.join("campaign.dfcp"),
            )
            .unwrap()
        };
        let a = run(&d1);
        let b = run(&d2);
        assert_eq!(a.ranking_digest, b.ranking_digest);
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(
            a.epochs.iter().map(|e| e.snapshot_hash).collect::<Vec<_>>(),
            b.epochs.iter().map(|e| e.snapshot_hash).collect::<Vec<_>>(),
            "per-epoch weights must agree bit for bit"
        );
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }

    #[test]
    fn crash_before_publish_resumes_bit_identically() {
        let clean_dir = tmpdir("crash_clean");
        let crash_dir = tmpdir("crash_crash");
        let cfg = tiny_cfg();
        let source = SyntheticPoseSource { poses_per_compound: 2 };

        let clean = run_active_campaign(
            &cfg,
            &job_cfg(clean_dir.clone()),
            &VinaScorerFactory,
            &source,
            clean_dir.join("campaign.dfcp"),
        )
        .unwrap();

        // Killed between epoch 1's retrain and its hot-swap: epoch 0 is
        // journaled (marker + dock jobs), epoch 1's dock jobs are
        // journaled but its weights never published.
        let manifest = crash_dir.join("campaign.dfcp");
        let aborted = run_active_campaign_aborting(
            &cfg,
            &job_cfg(crash_dir.clone()),
            &VinaScorerFactory,
            &source,
            &manifest,
            AbortPoint::BeforePublish { epoch: 1 },
        )
        .unwrap();
        assert!(aborted.is_none(), "the injected kill fired");

        let resumed = run_active_campaign(
            &cfg,
            &job_cfg(crash_dir.clone()),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(resumed.ranking_digest, clean.ranking_digest);
        assert_eq!(resumed.ranking, clean.ranking);
        assert!(
            resumed.epochs[0].verified_against_journal,
            "epoch 0 must be checked against its journaled marker"
        );
        assert!(
            resumed.epochs.iter().any(|e| e.dock_jobs_resumed > 0),
            "journaled dock jobs must restore instead of re-running"
        );
        std::fs::remove_dir_all(clean_dir).ok();
        std::fs::remove_dir_all(crash_dir).ok();
    }
}
