//! Deterministic fault injection for the screening pipeline.
//!
//! §4.2: "our encountering a wide range of errors (bad metadata, node
//! failure, broken pipe errors, etc...) led to our pipeline being tailored
//! for fault tolerance." The injector reproduces those three fault
//! classes, keyed on stable identifiers so runs are reproducible, and —
//! crucially — keyed on the *attempt* number so a rescheduled job can
//! succeed where the first attempt failed.

use dftensor::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// Fault probabilities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a node dies during a job attempt (kills the job).
    pub p_node_failure: f64,
    /// Probability a compound's input is unreadable (skipped, logged).
    pub p_bad_metadata: f64,
    /// Probability a rank's first file write fails (retried once).
    pub p_broken_pipe: f64,
    /// Seed of the fault stream (independent of the science seed).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { p_node_failure: 0.0, p_bad_metadata: 0.0, p_broken_pipe: 0.0, seed: 0 }
    }
}

impl FaultConfig {
    /// A configuration with all three fault classes active, used by the
    /// fault-tolerance tests and the Table 7 harness.
    pub fn noisy(seed: u64) -> Self {
        Self { p_node_failure: 0.08, p_bad_metadata: 0.02, p_broken_pipe: 0.10, seed }
    }
}

/// Fault occurrences recorded by a job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// One compound's input was unreadable and was skipped.
    BadMetadata {
        /// Library index of the skipped compound.
        compound_index: u64,
    },
    /// A rank's file write failed.
    BrokenPipe {
        /// The rank whose write failed.
        rank: usize,
        /// True when the retry succeeded.
        retried: bool,
    },
    /// A node died, killing the job attempt.
    NodeFailure {
        /// The node that failed.
        node: usize,
    },
}

/// Deterministic pseudo-random fault decisions.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    /// The probabilities and seed this injector draws from.
    pub config: FaultConfig,
}

impl FaultInjector {
    /// Builds an injector over a fault configuration.
    pub fn new(config: FaultConfig) -> Self {
        Self { config }
    }

    /// Maps a derived seed to a uniform in [0, 1).
    fn unit(&self, stream: u64) -> f64 {
        let h = derive_seed(self.config.seed, stream);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does `node` die during `attempt` of `job`?
    pub fn node_fails(&self, job_id: u64, attempt: u32, node: usize) -> bool {
        self.node_fails_scaled(job_id, attempt, node, 1.0)
    }

    /// Like [`node_fails`](Self::node_fails), with the failure
    /// probability scaled by `exposure` — the relative node-hours an
    /// attempt occupies (a dock attempt holds its nodes far longer than a
    /// filter attempt, so it sees proportionally more node deaths). The
    /// effective probability is `1 - (1-p)^exposure`; `exposure == 1.0`
    /// is guaranteed to reproduce the unscaled draw bit for bit, so
    /// homogeneous campaigns keep their historical fault streams.
    pub fn node_fails_scaled(&self, job_id: u64, attempt: u32, node: usize, exposure: f64) -> bool {
        let p = if exposure == 1.0 {
            self.config.p_node_failure
        } else {
            1.0 - (1.0 - self.config.p_node_failure).powf(exposure.max(0.0))
        };
        self.unit(0xA0D1 ^ job_id.rotate_left(17) ^ ((attempt as u64) << 40) ^ node as u64) < p
    }

    /// Is this compound's metadata corrupt?
    pub fn bad_metadata(&self, job_id: u64, compound_index: u64) -> bool {
        self.unit(0xBAD ^ job_id.rotate_left(9) ^ compound_index.rotate_left(23))
            < self.config.p_bad_metadata
    }

    /// Does this rank's first write attempt fail?
    pub fn broken_pipe(&self, job_id: u64, attempt: u32, rank: usize) -> bool {
        self.unit(0xF1FE ^ job_id.rotate_left(29) ^ ((attempt as u64) << 32) ^ rank as u64)
            < self.config.p_broken_pipe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires() {
        let inj = FaultInjector::new(FaultConfig::default());
        for j in 0..50 {
            assert!(!inj.node_fails(j, 0, 0));
            assert!(!inj.bad_metadata(j, j));
            assert!(!inj.broken_pipe(j, 0, 3));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(FaultConfig::noisy(5));
        let b = FaultInjector::new(FaultConfig::noisy(5));
        for j in 0..100 {
            assert_eq!(a.node_fails(j, 1, 2), b.node_fails(j, 1, 2));
            assert_eq!(a.bad_metadata(j, 7), b.bad_metadata(j, 7));
        }
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let inj =
            FaultInjector::new(FaultConfig { p_bad_metadata: 0.25, seed: 3, ..Default::default() });
        let hits = (0..10_000).filter(|&i| inj.bad_metadata(1, i)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn exposure_scaling_is_monotone_and_exact_at_one() {
        let inj =
            FaultInjector::new(FaultConfig { p_node_failure: 0.3, seed: 9, ..Default::default() });
        let count = |exposure: f64| {
            (0..4000u64).filter(|&j| inj.node_fails_scaled(j, 0, 0, exposure)).count()
        };
        // exposure 1.0 must reproduce the unscaled draw bit for bit.
        for j in 0..500u64 {
            assert_eq!(inj.node_fails(j, 0, 0), inj.node_fails_scaled(j, 0, 0, 1.0));
        }
        // Shorter exposure → fewer failures; longer → more.
        let (quarter, full, quadruple) = (count(0.25), count(1.0), count(4.0));
        assert!(quarter < full, "quarter exposure {quarter} !< full {full}");
        assert!(full < quadruple, "full {full} !< quadruple exposure {quadruple}");
        // Approximate the analytic rates: 1-(1-p)^e.
        let rate = |c: usize| c as f64 / 4000.0;
        assert!((rate(quarter) - (1.0 - 0.7f64.powf(0.25))).abs() < 0.02);
        assert!((rate(quadruple) - (1.0 - 0.7f64.powf(4.0))).abs() < 0.02);
    }

    #[test]
    fn retry_attempt_changes_the_outcome_eventually() {
        // A job whose first attempt hits a node failure must be able to
        // succeed on a later attempt (the paper reschedules failed jobs).
        let inj =
            FaultInjector::new(FaultConfig { p_node_failure: 0.5, seed: 11, ..Default::default() });
        let mut found = false;
        for job in 0..50u64 {
            let first = (0..4).any(|n| inj.node_fails(job, 0, n));
            let second = (0..4).any(|n| inj.node_fails(job, 1, n));
            if first && !second {
                found = true;
                break;
            }
        }
        assert!(found, "some job should fail on attempt 0 and pass on attempt 1");
    }
}
