//! `h5lite` — a small chunked binary container for screening results.
//!
//! The paper writes predictions to HDF5 files whose layout mirrors
//! ConveyorLC's CDT3Docking output so downstream tooling can read them
//! (§4.2). We cannot depend on libhdf5, so this module implements a
//! self-describing chunked format with the same role:
//!
//! ```text
//! [magic "DFH5" | version u32]
//! repeated chunks:
//!   [name_len u32][name bytes][record_count u32][records...]
//! record:
//!   [library u8][compound_index u64][target u8][pose_rank u16][score f64]
//! ```
//!
//! Each MPI rank writes its own file in parallel (the paper's mitigation
//! for the file-output bottleneck); a directory of rank files is read back
//! as one result set.
//!
//! Durability: writers created with [`H5Writer::create_atomic`] stage
//! their bytes in a hidden `*.tmp` sibling and only `rename(2)` it to the
//! final `.dfh5` name after `sync_all` succeeds, so a job killed mid-write
//! can never leave a readable partial result file — [`read_dir`] only ever
//! sees complete files. The parser treats every length field in the file
//! as untrusted: sizes are combined with checked arithmetic and validated
//! against the remaining bytes before any allocation, returning
//! [`H5Error::Corrupt`] instead of overflowing or over-allocating.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DFH5";
const VERSION: u32 = 1;
/// Encoded size of one [`ScoreRecord`] (`u8 + u64 + u8 + u16 + f64`).
const RECORD_BYTES: usize = 20;

/// One scored pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreRecord {
    /// The scored compound.
    pub compound: CompoundId,
    /// The target it was scored against.
    pub target: TargetSite,
    /// Pose index within this compound's docking ensemble.
    pub pose_rank: u16,
    /// Predicted binding affinity (pK for fusion; kcal/mol for physics).
    pub score: f64,
}

/// Errors from h5lite I/O.
#[derive(Debug)]
pub enum H5Error {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A file failed its structural or checksum validation.
    Corrupt(String),
}

impl std::fmt::Display for H5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H5Error::Io(e) => write!(f, "h5lite io error: {e}"),
            H5Error::Corrupt(m) => write!(f, "h5lite corrupt file: {m}"),
        }
    }
}

impl std::error::Error for H5Error {}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

fn library_code(l: Library) -> u8 {
    match l {
        Library::ZincWorldApproved => 0,
        Library::Chembl => 1,
        Library::EMolecules => 2,
        Library::EnamineVirtual => 3,
    }
}

fn library_from(code: u8) -> Result<Library, H5Error> {
    Ok(match code {
        0 => Library::ZincWorldApproved,
        1 => Library::Chembl,
        2 => Library::EMolecules,
        3 => Library::EnamineVirtual,
        other => return Err(H5Error::Corrupt(format!("bad library code {other}"))),
    })
}

fn target_code(t: TargetSite) -> u8 {
    match t {
        TargetSite::Protease1 => 0,
        TargetSite::Protease2 => 1,
        TargetSite::Spike1 => 2,
        TargetSite::Spike2 => 3,
    }
}

fn target_from(code: u8) -> Result<TargetSite, H5Error> {
    Ok(match code {
        0 => TargetSite::Protease1,
        1 => TargetSite::Protease2,
        2 => TargetSite::Spike1,
        3 => TargetSite::Spike2,
        other => return Err(H5Error::Corrupt(format!("bad target code {other}"))),
    })
}

/// Serializes one named chunk of records.
fn encode_chunk(name: &str, records: &[ScoreRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + name.len() + records.len() * RECORD_BYTES);
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name.as_bytes());
    buf.put_u32_le(records.len() as u32);
    for r in records {
        buf.put_u8(library_code(r.compound.library));
        buf.put_u64_le(r.compound.index);
        buf.put_u8(target_code(r.target));
        buf.put_u16_le(r.pose_rank);
        buf.put_f64_le(r.score);
    }
    buf.freeze()
}

/// The hidden staging sibling an atomic writer streams into before the
/// final `rename`. Ends in `.tmp`, so [`read_dir`] never picks it up.
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of a file's parent directory so a just-renamed entry
/// survives a crash. Directories cannot be opened for sync on every
/// platform; failures are ignored.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// A writer that appends named chunks to one file.
pub struct H5Writer {
    file: std::fs::File,
    /// Final (visible) path of the result file.
    pub path: PathBuf,
    /// When staging atomically, the `*.tmp` path the bytes live in until
    /// [`H5Writer::finish`] renames them into place.
    staging: Option<PathBuf>,
}

impl H5Writer {
    fn open(path: &Path, staging: bool) -> Result<H5Writer, H5Error> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let write_path = if staging { staging_path(path) } else { path.to_path_buf() };
        let mut file = std::fs::File::create(&write_path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        Ok(H5Writer { file, path: path.to_path_buf(), staging: staging.then_some(write_path) })
    }

    /// Creates (truncates) a result file and writes the header. The file
    /// is visible under its final name while being written; prefer
    /// [`H5Writer::create_atomic`] for anything a reader might race.
    pub fn create(path: impl AsRef<Path>) -> Result<H5Writer, H5Error> {
        Self::open(path.as_ref(), false)
    }

    /// Creates a result file that stages its bytes in a `*.tmp` sibling
    /// and atomically renames them to `path` in [`H5Writer::finish`]. A
    /// crash before `finish` leaves only the hidden staging file, which
    /// [`read_dir`] ignores — a partial `.dfh5` can never be read back.
    pub fn create_atomic(path: impl AsRef<Path>) -> Result<H5Writer, H5Error> {
        Self::open(path.as_ref(), true)
    }

    /// Appends one chunk.
    pub fn write_chunk(&mut self, name: &str, records: &[ScoreRecord]) -> Result<(), H5Error> {
        self.file.write_all(&encode_chunk(name, records))?;
        Ok(())
    }

    /// Forces the bytes to disk (`sync_all`, not a userspace flush) and,
    /// for atomic writers, renames the staging file into place and syncs
    /// the parent directory.
    pub fn finish(self) -> Result<PathBuf, H5Error> {
        self.file.sync_all()?;
        if let Some(staging) = &self.staging {
            std::fs::rename(staging, &self.path)?;
            sync_parent_dir(&self.path);
        }
        Ok(self.path)
    }

    /// Abandons the write, removing the staging file if one exists. Used
    /// when an upper layer decides the attempt is dead (e.g. a broken
    /// pipe) and will re-issue the whole write.
    pub fn abort(self) {
        if let Some(staging) = &self.staging {
            std::fs::remove_file(staging).ok();
        }
    }
}

/// Reads every chunk of one file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<(String, Vec<ScoreRecord>)>, H5Error> {
    let mut raw = Vec::new();
    std::fs::File::open(&path)?.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 8 {
        return Err(H5Error::Corrupt("file shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(H5Error::Corrupt("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(H5Error::Corrupt(format!("unsupported version {version}")));
    }
    let mut chunks = Vec::new();
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            return Err(H5Error::Corrupt("truncated chunk header".into()));
        }
        // Both length fields come off disk: combine them with checked
        // arithmetic and validate against the remaining bytes before any
        // allocation, so a corrupt length can neither overflow nor trigger
        // a giant `with_capacity`.
        let name_len = buf.get_u32_le() as usize;
        let name_and_count = name_len
            .checked_add(4)
            .ok_or_else(|| H5Error::Corrupt(format!("chunk name length {name_len} overflows")))?;
        if buf.remaining() < name_and_count {
            return Err(H5Error::Corrupt("truncated chunk name".into()));
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| H5Error::Corrupt("chunk name not utf8".into()))?;
        let count = buf.get_u32_le() as usize;
        let record_bytes = count
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| H5Error::Corrupt(format!("record count {count} overflows")))?;
        if buf.remaining() < record_bytes {
            return Err(H5Error::Corrupt(format!("truncated records in chunk {name}")));
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let library = library_from(buf.get_u8())?;
            let index = buf.get_u64_le();
            let target = target_from(buf.get_u8())?;
            let pose_rank = buf.get_u16_le();
            let score = buf.get_f64_le();
            records.push(ScoreRecord {
                compound: CompoundId { library, index },
                target,
                pose_rank,
                score,
            });
        }
        chunks.push((name, records));
    }
    Ok(chunks)
}

/// Reads every `.dfh5` file in a directory, concatenating all records.
pub fn read_dir(dir: impl AsRef<Path>) -> Result<Vec<ScoreRecord>, H5Error> {
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "dfh5"))
        .collect();
    paths.sort();
    for p in paths {
        for (_, mut records) in read_file(&p)? {
            out.append(&mut records);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: u64) -> Vec<ScoreRecord> {
        (0..n)
            .map(|i| ScoreRecord {
                compound: CompoundId { library: Library::EnamineVirtual, index: i },
                target: TargetSite::Spike1,
                pose_rank: (i % 10) as u16,
                score: 5.0 + i as f64 * 0.01,
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfh5_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_single_chunk() {
        let dir = tmpdir("rt");
        let path = dir.join("rank0.dfh5");
        let records = sample_records(100);
        let mut w = H5Writer::create(&path).unwrap();
        w.write_chunk("predictions", &records).unwrap();
        w.finish().unwrap();
        let chunks = read_file(&path).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].0, "predictions");
        assert_eq!(chunks[0].1, records);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn multiple_chunks_preserve_order() {
        let dir = tmpdir("multi");
        let path = dir.join("r.dfh5");
        let mut w = H5Writer::create(&path).unwrap();
        w.write_chunk("a", &sample_records(3)).unwrap();
        w.write_chunk("b", &sample_records(5)).unwrap();
        w.finish().unwrap();
        let chunks = read_file(&path).unwrap();
        assert_eq!(chunks.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(chunks[1].1.len(), 5);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_dir_merges_rank_files() {
        let dir = tmpdir("dir");
        for rank in 0..4 {
            let mut w = H5Writer::create(dir.join(format!("rank{rank}.dfh5"))).unwrap();
            w.write_chunk("p", &sample_records(10)).unwrap();
            w.finish().unwrap();
        }
        // A non-result file is ignored.
        std::fs::write(dir.join("log.txt"), b"noise").unwrap();
        let all = read_dir(&dir).unwrap();
        assert_eq!(all.len(), 40);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_files_are_rejected_not_panicked() {
        let dir = tmpdir("corrupt");
        let p1 = dir.join("bad_magic.dfh5");
        std::fs::write(&p1, b"NOPE0000").unwrap();
        assert!(matches!(read_file(&p1), Err(H5Error::Corrupt(_))));

        // Truncated records.
        let p2 = dir.join("trunc.dfh5");
        let mut w = H5Writer::create(&p2).unwrap();
        w.write_chunk("p", &sample_records(10)).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &full[..full.len() - 7]).unwrap();
        assert!(matches!(read_file(&p2), Err(H5Error::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_writer_is_invisible_until_finish() {
        let dir = tmpdir("atomic");
        let path = dir.join("rank0.dfh5");
        let mut w = H5Writer::create_atomic(&path).unwrap();
        w.write_chunk("predictions", &sample_records(20)).unwrap();
        // Mid-write: only the hidden staging file exists; a reader sees
        // nothing.
        assert!(!path.exists(), "final name must not exist before finish");
        assert!(staging_path(&path).exists());
        assert!(read_dir(&dir).unwrap().is_empty());
        let finished = w.finish().unwrap();
        assert_eq!(finished, path);
        assert!(!staging_path(&path).exists(), "staging renamed away");
        assert_eq!(read_dir(&dir).unwrap().len(), 20);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn killed_mid_write_leaves_no_readable_partial_file() {
        let dir = tmpdir("killed");
        let complete = dir.join("done.dfh5");
        let mut w = H5Writer::create_atomic(&complete).unwrap();
        w.write_chunk("predictions", &sample_records(5)).unwrap();
        w.finish().unwrap();
        // Simulate a job killed mid-write: the writer is dropped without
        // finish, leaving a half-written staging file on disk.
        let dead = dir.join("dead.dfh5");
        let mut w = H5Writer::create_atomic(&dead).unwrap();
        w.write_chunk("predictions", &sample_records(100)).unwrap();
        drop(w);
        assert!(staging_path(&dead).exists(), "partial staging bytes remain");
        assert!(!dead.exists());
        // The merged result set contains only the complete file.
        assert_eq!(read_dir(&dir).unwrap().len(), 5);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn abort_removes_the_staging_file() {
        let dir = tmpdir("abort");
        let path = dir.join("r.dfh5");
        let mut w = H5Writer::create_atomic(&path).unwrap();
        w.write_chunk("predictions", &sample_records(3)).unwrap();
        w.abort();
        assert!(!staging_path(&path).exists());
        assert!(!path.exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn hostile_length_fields_are_rejected_not_panicked() {
        let dir = tmpdir("hostile");
        // name_len = u32::MAX: checked add + remaining guard → Corrupt.
        let p1 = dir.join("name_len.dfh5");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"pp");
        std::fs::write(&p1, &bytes).unwrap();
        assert!(matches!(read_file(&p1), Err(H5Error::Corrupt(_))));

        // record count = u32::MAX with no payload: must fail the size
        // check before any `with_capacity(count)` allocation.
        let p2 = dir.join("count.dfh5");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'p');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&p2, &bytes).unwrap();
        assert!(matches!(read_file(&p2), Err(H5Error::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn all_libraries_and_targets_encode() {
        let dir = tmpdir("codes");
        let path = dir.join("x.dfh5");
        let mut records = Vec::new();
        for (li, l) in Library::ALL.into_iter().enumerate() {
            for (ti, t) in TargetSite::ALL.into_iter().enumerate() {
                records.push(ScoreRecord {
                    compound: CompoundId { library: l, index: li as u64 },
                    target: t,
                    pose_rank: ti as u16,
                    score: -7.5,
                });
            }
        }
        let mut w = H5Writer::create(&path).unwrap();
        w.write_chunk("codes", &records).unwrap();
        w.finish().unwrap();
        assert_eq!(read_file(&path).unwrap()[0].1, records);
        std::fs::remove_dir_all(dir).ok();
    }
}
