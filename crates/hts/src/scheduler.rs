//! Fault-tolerant campaign scheduler.
//!
//! Runs many evaluation jobs across a bounded pool of "node allocations"
//! (worker threads), re-queueing failed jobs with an incremented attempt
//! counter. This reproduces the paper's operational design: "when a job
//! fails it has minimal impact on overall throughput (another job takes
//! its place) ... and only a small set of compounds are affected or need
//! to be rescheduled" (§4.2).
//!
//! Three durability/liveness properties on top of that:
//!
//! * **Liveness.** A worker only exits when the queue is empty *and*
//!   nothing is in flight. A momentarily-empty queue (every remaining job
//!   currently running) parks the worker on a condvar instead of killing
//!   it, so jobs re-queued by a failure retry at full parallelism.
//! * **Deterministic backoff.** A failed attempt waits
//!   [`retry_backoff`] — exponential in the attempt number with jitter
//!   derived from `(job_id, attempt)` via `derive_seed` — before being
//!   re-queued, so retry storms spread out identically on every run.
//! * **Checkpointing.** [`resume_campaign`] journals every terminal job
//!   event to a crash-safe [`checkpoint`](crate::checkpoint) manifest and
//!   skips journaled work on restart, yielding a result set bit-identical
//!   to an uninterrupted run.

use crate::checkpoint::{
    reconstruct_output, summarize, CheckpointError, CheckpointWriter, ManifestEntry,
};
use crate::job::{run_job, JobConfig, JobError, JobOutput, JobSpec, PoseSource};
use crate::scorer::ScorerFactory;
use dftensor::rng::derive_seed;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

/// Scheduler limits.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Jobs running concurrently (the paper "regularly ran more than 10").
    pub max_parallel_jobs: usize,
    /// Attempts per job before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt. Zero disables
    /// backoff entirely.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_parallel_jobs: 4,
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// Deterministic exponential backoff with jitter for retry `attempt` of
/// `job_id` (attempt 1 = first retry).
///
/// The delay is `base << (attempt-1)`, capped at `max`, scaled by a
/// jitter factor in `[0.5, 1.0]` derived from `(job_id, attempt)` via
/// `derive_seed` — the same `(job, attempt)` always backs off for the
/// same duration, so campaigns stay bit-reproducible, while distinct jobs
/// failing together de-synchronize instead of retrying in lockstep.
pub fn retry_backoff(base: Duration, max: Duration, job_id: u64, attempt: u32) -> Duration {
    if base.is_zero() || attempt == 0 {
        return Duration::ZERO;
    }
    let doublings = (attempt - 1).min(20);
    let exp = base.saturating_mul(1u32 << doublings.min(31));
    let capped = exp.min(max);
    let h = derive_seed(job_id, 0xB0FF ^ attempt as u64);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    capped.mul_f64(0.5 + 0.5 * unit)
}

/// Campaign-level outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Completed job outputs, in completion order.
    pub outputs: Vec<JobOutput>,
    /// Jobs that exhausted their attempts.
    pub abandoned: Vec<JobSpec>,
    /// Total failed attempts across the run (rescheduled jobs).
    pub failed_attempts: usize,
    /// Jobs restored from a checkpoint manifest instead of re-run
    /// (always 0 for [`run_campaign`]).
    pub jobs_resumed: usize,
    /// Fewest live workers observed at any retry re-queue — a liveness
    /// diagnostic. With the in-flight tracking fix this equals the worker
    /// pool size; workers exiting early shows up as a smaller value.
    /// `None` when no attempt failed.
    pub min_live_workers_at_retry: Option<usize>,
    /// Wall-clock duration of the whole campaign.
    pub wall_time: Duration,
}

impl CampaignReport {
    /// Total poses evaluated across every completed job.
    pub fn total_poses(&self) -> usize {
        self.outputs.iter().map(|o| o.timing.poses_evaluated).sum()
    }

    /// Aggregate poses/second over the campaign's wall time (via the
    /// shared [`dftrace::rate`] implementation).
    pub fn poses_per_sec(&self) -> f64 {
        dftrace::rate::per_sec(self.total_poses() as f64, self.wall_time.as_secs_f64())
    }
}

/// Shared queue state. `in_flight` is updated under the same lock as the
/// queue so no worker can observe "queue empty, nothing in flight" while
/// a running job is about to re-queue itself.
struct SchedState {
    queue: VecDeque<JobSpec>,
    in_flight: usize,
    live_workers: usize,
    min_live_at_retry: Option<usize>,
}

/// Runs every job, retrying failures, across the worker pool.
pub fn run_campaign(
    sched: &SchedulerConfig,
    job_cfg: &JobConfig,
    specs: Vec<JobSpec>,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
) -> CampaignReport {
    campaign_loop(sched, specs, &|spec| run_job(job_cfg, spec, factory, source), None)
}

/// Resumes (or starts) a checkpointed campaign.
///
/// Loads the manifest at `manifest_path` (creating it if absent), restores
/// every journaled completed job from its on-disk rank files, skips
/// journaled abandoned jobs, and runs only the remainder — journaling each
/// terminal event as it happens. The merged report is bit-identical to an
/// uninterrupted [`run_campaign`] over the same `specs`.
///
/// Requirements for bit-identical resume: the same `specs`, `job_cfg`
/// (rank layout decides record order) and scorer/pose source as the
/// interrupted run, and the rank files it wrote still on disk. A journaled
/// job whose rank files are missing or disagree with the journal is
/// quietly re-run rather than trusted.
pub fn resume_campaign(
    sched: &SchedulerConfig,
    job_cfg: &JobConfig,
    specs: Vec<JobSpec>,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
    manifest_path: impl AsRef<Path>,
) -> Result<CampaignReport, CheckpointError> {
    let (writer, loaded) = CheckpointWriter::open_or_create(manifest_path)?;

    // Index the journal by job id, keeping the latest entry per job.
    let mut journaled: std::collections::HashMap<u64, &ManifestEntry> =
        std::collections::HashMap::new();
    for entry in &loaded.entries {
        journaled.insert(entry.job_id(), entry);
    }

    let mut restored: Vec<JobOutput> = Vec::new();
    let mut abandoned: Vec<JobSpec> = Vec::new();
    let mut remaining: Vec<JobSpec> = Vec::new();
    for spec in specs {
        match journaled.get(&spec.job_id) {
            Some(ManifestEntry::Completed { spec: done_spec, summary }) => {
                match reconstruct_output(job_cfg, done_spec, summary) {
                    Ok(out) => restored.push(out),
                    Err(_) => {
                        // Rank files vanished or disagree with the
                        // journal: the journal entry is unusable, re-run.
                        dftrace::counter_add("hts.resume_restore_failed", 1);
                        remaining.push(spec);
                    }
                }
            }
            Some(ManifestEntry::Abandoned { spec: dead_spec }) => {
                abandoned.push(dead_spec.clone());
            }
            None => remaining.push(spec),
        }
    }
    let resumed = restored.len();
    dftrace::counter_add("hts.resume_skipped", (resumed + abandoned.len()) as u64);
    dftrace::gauge_set("hts.jobs_resumed", resumed as f64);

    let journal = Mutex::new(writer);
    let mut report = campaign_loop(
        sched,
        remaining,
        &|spec| run_job(job_cfg, spec, factory, source),
        Some(&journal),
    );

    report.outputs.extend(restored);
    report.outputs.sort_by_key(|o| o.job_id);
    report.abandoned.extend(abandoned);
    report.abandoned.sort_by_key(|s| s.job_id);
    report.jobs_resumed = resumed;
    Ok(report)
}

/// The campaign loop over an arbitrary job runner; `run_campaign` and
/// `resume_campaign` instantiate it with [`run_job`], tests inject
/// scripted runners to pin down scheduling behaviour.
///
/// When `journal` is given, every terminal job event is appended (and
/// fsynced) *before* the result is published, so a driver crash never
/// loses acknowledged work.
fn campaign_loop<R>(
    sched: &SchedulerConfig,
    specs: Vec<JobSpec>,
    runner: &R,
    journal: Option<&Mutex<CheckpointWriter>>,
) -> CampaignReport
where
    R: Fn(&JobSpec) -> Result<JobOutput, JobError> + Sync,
{
    let _campaign_span = dftrace::span("hts.campaign");
    let start = Instant::now();
    let workers = sched.max_parallel_jobs.max(1);
    let state = Mutex::new(SchedState {
        queue: specs.into(),
        in_flight: 0,
        live_workers: workers,
        min_live_at_retry: None,
    });
    let work_cv = Condvar::new();
    let outputs: Mutex<Vec<JobOutput>> = Mutex::new(Vec::new());
    let abandoned: Mutex<Vec<JobSpec>> = Mutex::new(Vec::new());
    let failed_attempts = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                // Claim work. Exit only when the queue is empty AND no job
                // is in flight — an in-flight failure may still re-queue.
                let spec = {
                    let mut st = state.lock();
                    loop {
                        if let Some(spec) = st.queue.pop_front() {
                            st.in_flight += 1;
                            break Some(spec);
                        }
                        if st.in_flight == 0 {
                            break None;
                        }
                        work_cv.wait(&mut st);
                    }
                };
                let Some(spec) = spec else {
                    let mut st = state.lock();
                    st.live_workers -= 1;
                    drop(st);
                    // Wake any parked sibling so it re-checks the exit
                    // condition.
                    work_cv.notify_all();
                    break;
                };

                let job_start = Instant::now();
                let result = runner(&spec);
                dftrace::observe_duration("hts.job_us", job_start.elapsed());
                match result {
                    Ok(out) => {
                        dftrace::counter_add("hts.jobs_completed", 1);
                        // Journal-then-publish: the entry is fsynced
                        // before the output becomes visible, so a crash
                        // cannot acknowledge work it would later forget.
                        if let Some(journal) = journal {
                            let entry = ManifestEntry::Completed {
                                spec: spec.clone(),
                                summary: summarize(&out),
                            };
                            if journal.lock().append(&entry).is_err() {
                                dftrace::counter_add("hts.checkpoint_append_failed", 1);
                            }
                        }
                        outputs.lock().push(out);
                    }
                    Err(JobError::NodeFailure { .. }) => {
                        dftrace::counter_add("hts.jobs_failed", 1);
                        failed_attempts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let mut retry = spec;
                        retry.attempt += 1;
                        if retry.attempt < sched.max_attempts {
                            // Deterministic exponential backoff before the
                            // retry re-enters the queue.
                            let backoff = retry_backoff(
                                sched.base_backoff,
                                sched.max_backoff,
                                retry.job_id,
                                retry.attempt,
                            );
                            if !backoff.is_zero() {
                                dftrace::counter_add("hts.backoff_retries", 1);
                                dftrace::observe_duration("hts.backoff_us", backoff);
                                std::thread::sleep(backoff);
                            }
                            let mut st = state.lock();
                            // Liveness diagnostic: how many workers are
                            // still alive to pick this retry up?
                            let live = st.live_workers;
                            st.min_live_at_retry =
                                Some(st.min_live_at_retry.map_or(live, |m| m.min(live)));
                            // Another job takes its place: push to the
                            // back.
                            st.queue.push_back(retry);
                        } else {
                            if let Some(journal) = journal {
                                let entry = ManifestEntry::Abandoned { spec: retry.clone() };
                                if journal.lock().append(&entry).is_err() {
                                    dftrace::counter_add("hts.checkpoint_append_failed", 1);
                                }
                            }
                            abandoned.lock().push(retry);
                        }
                    }
                }
                let mut st = state.lock();
                st.in_flight -= 1;
                drop(st);
                work_cv.notify_all();
            });
        }
    })
    .expect("scheduler worker panicked");

    let state = state.into_inner();
    let mut outputs = outputs.into_inner();
    outputs.sort_by_key(|o| o.job_id);
    let mut abandoned = abandoned.into_inner();
    abandoned.sort_by_key(|s| s.job_id);
    let report = CampaignReport {
        outputs,
        abandoned,
        failed_attempts: failed_attempts.into_inner(),
        jobs_resumed: 0,
        min_live_workers_at_retry: state.min_live_at_retry,
        wall_time: start.elapsed(),
    };
    // Same rate implementation the Table 7 model uses (dftrace::rate), so
    // the tracer and the throughput report can never disagree.
    dftrace::gauge_set("hts.poses_per_sec", report.poses_per_sec());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::h5lite::read_dir;
    use crate::job::{JobTiming, SyntheticPoseSource};
    use crate::scorer::VinaScorerFactory;
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfsched_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn specs(n: u64, per_job: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|j| JobSpec {
                job_id: j,
                target: TargetSite::Spike1,
                library: Library::EnamineVirtual,
                first_compound: j * per_job,
                num_compounds: per_job,
                campaign_seed: 4,
                attempt: 0,
            })
            .collect()
    }

    fn job_cfg(dir: PathBuf, faults: FaultConfig) -> JobConfig {
        JobConfig { nodes: 1, ranks_per_node: 2, batch_size: 4, output_dir: dir, faults }
    }

    /// A JobOutput for scripted runners that never touch disk.
    fn stub_output(job_id: u64) -> JobOutput {
        JobOutput {
            job_id,
            records: Vec::new(),
            files: Vec::new(),
            faults: Vec::new(),
            write_retries: 0,
            timing: JobTiming {
                startup: Duration::ZERO,
                evaluate: Duration::ZERO,
                output: Duration::ZERO,
                poses_evaluated: 0,
            },
        }
    }

    #[test]
    fn all_jobs_complete_without_faults() {
        let dir = tmpdir("clean");
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 3, max_attempts: 2, ..Default::default() },
            &job_cfg(dir.clone(), FaultConfig::default()),
            specs(6, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
        );
        assert_eq!(report.outputs.len(), 6);
        assert!(report.abandoned.is_empty());
        assert_eq!(report.failed_attempts, 0);
        assert_eq!(report.jobs_resumed, 0);
        assert_eq!(report.min_live_workers_at_retry, None);
        assert_eq!(report.total_poses(), 6 * 4 * 2);
        assert!(report.poses_per_sec() > 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_jobs_are_rescheduled_and_finish() {
        let dir = tmpdir("retry");
        // Aggressive node failures; retries flip the outcome per attempt.
        let faults = FaultConfig { p_node_failure: 0.4, seed: 2, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 10, ..Default::default() },
            &job_cfg(dir.clone(), faults),
            specs(8, 3),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert!(report.failed_attempts > 0, "some attempts should fail");
        assert_eq!(report.outputs.len(), 8, "every job eventually completes");
        assert!(report.abandoned.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn permanently_failing_jobs_are_abandoned() {
        let dir = tmpdir("abandon");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 3, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 3, ..Default::default() },
            &job_cfg(dir.clone(), faults),
            specs(4, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert_eq!(report.abandoned.len(), 4);
        assert_eq!(report.failed_attempts, 12, "3 attempts per job");
        assert!(report.outputs.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parallelism_does_not_change_the_result_set() {
        let d1 = tmpdir("p1");
        let d2 = tmpdir("p4");
        let run = |dir: PathBuf, par: usize| {
            run_campaign(
                &SchedulerConfig { max_parallel_jobs: par, max_attempts: 2, ..Default::default() },
                &job_cfg(dir, FaultConfig::default()),
                specs(5, 3),
                &VinaScorerFactory,
                &SyntheticPoseSource { poses_per_compound: 2 },
            )
        };
        let a = run(d1.clone(), 1);
        let b = run(d2.clone(), 4);
        assert_eq!(a.outputs.len(), b.outputs.len());
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.job_id, y.job_id);
            assert_eq!(x.records.len(), y.records.len());
        }
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }

    /// Regression test for the scheduler liveness bug: workers used to
    /// exit as soon as the queue was momentarily empty, even with jobs in
    /// flight whose failure would re-queue work.
    ///
    /// Deterministic schedule with a scripted runner and 2 workers:
    /// job 1 completes instantly, after which its worker observes an
    /// empty queue while job 0 is still in flight. Old code: that worker
    /// exits, and when job 0 fails only 1 worker is left to take the
    /// retry (`min_live_workers_at_retry == 1`). Fixed code: the worker
    /// parks and is still alive at the re-queue.
    #[test]
    fn workers_wait_for_in_flight_jobs_instead_of_exiting() {
        let job1_done = std::sync::atomic::AtomicBool::new(false);
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            match (spec.job_id, spec.attempt) {
                (1, 0) => {
                    job1_done.store(true, Ordering::SeqCst);
                    Ok(stub_output(1))
                }
                (0, 0) => {
                    // Hold job 0 in flight until job 1's worker has had
                    // ample time to drain the queue and hit the empty
                    // check, then fail so the retry gets re-queued.
                    while !job1_done.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    std::thread::sleep(Duration::from_millis(100));
                    Err(JobError::NodeFailure { job_id: 0, node: 0 })
                }
                (0, _) => Ok(stub_output(0)),
                other => panic!("unexpected schedule {other:?}"),
            }
        };
        let report = campaign_loop(
            &SchedulerConfig {
                max_parallel_jobs: 2,
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            specs(2, 1),
            &runner,
            None,
        );
        assert_eq!(report.outputs.len(), 2, "both jobs complete");
        assert_eq!(report.failed_attempts, 1);
        assert_eq!(
            report.min_live_workers_at_retry,
            Some(2),
            "the idle worker must park, not exit, while job 0 is in flight"
        );
    }

    /// Both workers stay available through a *chain* of staggered
    /// failures — the cascade that used to serialize the whole tail of a
    /// campaign.
    #[test]
    fn retry_chains_keep_full_parallelism() {
        let fails_left = AtomicUsize::new(4);
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            std::thread::sleep(Duration::from_millis(5));
            if fails_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err(JobError::NodeFailure { job_id: spec.job_id, node: 0 })
            } else {
                Ok(stub_output(spec.job_id))
            }
        };
        let report = campaign_loop(
            &SchedulerConfig {
                max_parallel_jobs: 3,
                max_attempts: 10,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            specs(3, 1),
            &runner,
            None,
        );
        assert_eq!(report.outputs.len(), 3);
        assert_eq!(report.failed_attempts, 4);
        assert_eq!(report.min_live_workers_at_retry, Some(3), "no worker exited early");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let base = Duration::from_millis(2);
        let max = Duration::from_millis(50);
        // Deterministic: same (job, attempt) → same delay.
        assert_eq!(retry_backoff(base, max, 7, 1), retry_backoff(base, max, 7, 1));
        // Jitter: different jobs de-synchronize.
        assert_ne!(retry_backoff(base, max, 7, 1), retry_backoff(base, max, 8, 1));
        // Exponential envelope with jitter in [0.5, 1.0] × capped value.
        for attempt in 1..8u32 {
            let nominal = base.saturating_mul(1u32 << (attempt - 1)).min(max);
            for job in 0..20u64 {
                let d = retry_backoff(base, max, job, attempt);
                assert!(d >= nominal.mul_f64(0.5), "attempt {attempt} job {job}: {d:?}");
                assert!(d <= nominal, "attempt {attempt} job {job}: {d:?}");
            }
        }
        // Attempt 0 and zero base disable backoff.
        assert_eq!(retry_backoff(base, max, 1, 0), Duration::ZERO);
        assert_eq!(retry_backoff(Duration::ZERO, max, 1, 3), Duration::ZERO);
        // Huge attempt numbers saturate instead of overflowing.
        assert!(retry_backoff(base, max, 1, u32::MAX) <= max);
    }

    #[test]
    fn resumed_campaign_is_bit_identical_to_uninterrupted() {
        let clean_dir = tmpdir("resume_clean");
        let crash_dir = tmpdir("resume_crash");
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 4, ..Default::default() };
        let faults =
            FaultConfig { p_node_failure: 0.25, p_broken_pipe: 0.2, seed: 9, ..Default::default() };
        let source = SyntheticPoseSource { poses_per_compound: 2 };

        // Uninterrupted reference run.
        let clean = run_campaign(
            &sched,
            &job_cfg(clean_dir.clone(), faults),
            specs(6, 4),
            &VinaScorerFactory,
            &source,
        );
        assert_eq!(clean.outputs.len(), 6);

        // "Crashed" run: the driver dies after 3 of 6 jobs. Simulated by
        // journaling exactly what the scheduler would have journaled for
        // the first 3 jobs (running them for real), then dropping the
        // writer mid-entry to leave a torn tail.
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        {
            let mut w = CheckpointWriter::create(&manifest).unwrap();
            for spec in specs(3, 4) {
                let mut spec = spec;
                let out = loop {
                    match run_job(&crash_cfg, &spec, &VinaScorerFactory, &source) {
                        Ok(out) => break out,
                        Err(_) => spec.attempt += 1,
                    }
                };
                w.append(&ManifestEntry::Completed { spec, summary: summarize(&out) }).unwrap();
            }
            drop(w);
            // Torn tail: the driver died mid-append on job 3.
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&120u32.to_le_bytes()).unwrap();
            f.write_all(b"half a frame").unwrap();
        }

        // Resume over the full spec list: only jobs 3..6 re-run.
        let resumed = resume_campaign(
            &sched,
            &crash_cfg,
            specs(6, 4),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(resumed.jobs_resumed, 3);
        assert_eq!(resumed.outputs.len(), 6);

        // Bit-identical result set: same jobs, same records, same order,
        // same scores to the last bit.
        for (a, b) in clean.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.job_id, b.job_id);
            assert_eq!(a.records, b.records, "job {} records differ", a.job_id);
            assert_eq!(a.faults, b.faults, "job {} fault log differs", a.job_id);
        }
        // And the merged on-disk view agrees between the two directories.
        let mut on_disk_clean = read_dir(&clean_dir).unwrap();
        let mut on_disk_crash = read_dir(&crash_dir).unwrap();
        let key = |r: &crate::h5lite::ScoreRecord| (r.compound.index, r.pose_rank);
        on_disk_clean.sort_by_key(key);
        on_disk_crash.sort_by_key(key);
        assert_eq!(on_disk_clean, on_disk_crash);

        // Resuming again re-runs nothing and still reports everything.
        let again = resume_campaign(
            &sched,
            &crash_cfg,
            specs(6, 4),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(again.jobs_resumed, 6);
        assert_eq!(again.failed_attempts, 0, "nothing re-ran");
        for (a, b) in clean.outputs.iter().zip(&again.outputs) {
            assert_eq!(a.records, b.records);
        }

        std::fs::remove_dir_all(clean_dir).ok();
        std::fs::remove_dir_all(crash_dir).ok();
    }

    #[test]
    fn resume_rejects_a_corrupt_manifest_gracefully() {
        let dir = tmpdir("resume_corrupt");
        let manifest = dir.join("campaign.dfcp");
        std::fs::write(&manifest, b"GARBAGE!").unwrap();
        let err = resume_campaign(
            &SchedulerConfig::default(),
            &job_cfg(dir.clone(), FaultConfig::default()),
            specs(2, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
            &manifest,
        );
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_reruns_jobs_whose_rank_files_were_lost() {
        let dir = tmpdir("resume_lostfiles");
        let cfg = job_cfg(dir.clone(), FaultConfig::default());
        let manifest = dir.join("campaign.dfcp");
        let source = SyntheticPoseSource { poses_per_compound: 1 };
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 2, ..Default::default() };

        let first =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(first.outputs.len(), 3);
        // Delete job 1's rank files out from under the journal.
        for f in &first.outputs[1].files {
            std::fs::remove_file(f).unwrap();
        }
        let resumed =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(resumed.outputs.len(), 3, "job 1 was re-run, not lost");
        assert_eq!(resumed.jobs_resumed, 2);
        for (a, b) in first.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.records, b.records, "re-run reproduces the records");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn abandoned_jobs_are_journaled_and_skipped_on_resume() {
        let dir = tmpdir("resume_abandoned");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 3, ..Default::default() };
        let cfg = job_cfg(dir.clone(), faults);
        let manifest = dir.join("campaign.dfcp");
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 2, ..Default::default() };
        let source = SyntheticPoseSource { poses_per_compound: 1 };

        let first =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(first.abandoned.len(), 3);
        assert_eq!(first.failed_attempts, 6);

        let resumed =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(resumed.abandoned.len(), 3, "abandonment is remembered");
        assert_eq!(resumed.failed_attempts, 0, "no attempts were re-burned");
        // The journaled specs carry the final attempt count.
        assert!(resumed.abandoned.iter().all(|s| s.attempt == 2));
        std::fs::remove_dir_all(dir).ok();
    }
}
