//! Fault-tolerant heterogeneous campaign scheduler.
//!
//! Runs many evaluation jobs across a bounded pool of "node allocations"
//! (worker threads), re-queueing failed jobs with an incremented attempt
//! counter. This reproduces the paper's operational design: "when a job
//! fails it has minimal impact on overall throughput (another job takes
//! its place) ... and only a small set of compounds are affected or need
//! to be rescheduled" (§4.2).
//!
//! The campaign is **heterogeneous** (the RAPTOR problem shape,
//! arXiv:2209.00114): jobs carry a [`TaskClass`] — filter / surrogate /
//! dock / rescore — whose per-compound costs span two orders of
//! magnitude. Treating them as one FIFO wastes allocation on dispatch
//! overhead for the short classes and lets cheap upstream stages flood
//! the expensive ones. Four mechanisms address that:
//!
//! * **Class lanes with weighted priority.** Each class has its own queue
//!   lane; workers pull from the non-empty lane with the lowest stride
//!   pass (pass += `STRIDE_ONE / dispatch_weight` per dispatch), so dock
//!   gets the largest dispatch share without starving the short lanes.
//! * **Task bundling.** Jobs whose estimated cost
//!   ([`JobSpec::est_cost`]) is below
//!   [`SchedulerConfig::bundle_cost_cap`] are popped up to
//!   [`SchedulerConfig::bundle_max`] at a time into one worker dispatch,
//!   amortizing queue/condvar overhead that would otherwise dominate
//!   short tasks.
//! * **Pilot-style worker reuse.** Workers are not bound to a class —
//!   the same pool thread runs a bundle of filter jobs, then a dock job,
//!   then a rescore, pulling whatever the lane priority offers instead
//!   of exiting per job class.
//! * **Bounded backpressure.** With [`SchedulerConfig::lane_capacity`]
//!   set, each lane admits at most that many queued jobs; the rest wait
//!   in a per-lane staging backlog, so a prefilter stage that shortlists
//!   millions of compounds cannot flood the dock lane's working queue.
//!
//! Three durability/liveness properties on top of that:
//!
//! * **Liveness.** A worker only exits when every lane (admitted and
//!   backlog), the deferred-retry set and the in-flight count are all
//!   empty. A momentarily-empty queue parks the worker on a condvar
//!   instead of killing it, so retries re-enter at full parallelism.
//! * **Deterministic backoff off the worker thread.** A failed attempt
//!   is re-queued with a *ready-at deadline* of now +
//!   [`retry_backoff`] — exponential in the attempt number with jitter
//!   derived from `(job_id, attempt)` via `derive_seed`. The failing
//!   worker immediately moves on to other work; it never sleeps out the
//!   backoff while holding a worker slot (the old behaviour, which
//!   serialized campaign tails under retry storms).
//! * **Checkpointing.** [`resume_campaign`] journals every terminal job
//!   event to a crash-safe [`checkpoint`](crate::checkpoint) manifest and
//!   skips journaled work on restart, yielding a result set bit-identical
//!   to an uninterrupted run. Journaled specs carry their class tag, so a
//!   heterogeneous campaign resumes onto the same lanes.

use crate::checkpoint::{
    reconstruct_output, summarize, CheckpointError, CheckpointWriter, ManifestEntry,
};
use crate::job::{run_job, JobConfig, JobError, JobOutput, JobSpec, PoseSource, TaskClass};
use crate::scorer::ScorerFactory;
use dftensor::rng::derive_seed;
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

/// Scheduler limits.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Jobs running concurrently (the paper "regularly ran more than 10").
    pub max_parallel_jobs: usize,
    /// Attempts per job before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt. Zero disables
    /// backoff entirely.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
    /// Most jobs one worker dispatch may bundle (1 disables bundling).
    /// Only jobs whose [`JobSpec::est_cost`] is at or below
    /// [`bundle_cost_cap`](Self::bundle_cost_cap) ride in bundles.
    pub bundle_max: usize,
    /// Estimated-cost ceiling under which a job counts as "short" and may
    /// be bundled. The default (64, i.e. up to 64 filter-class compounds)
    /// keeps every dock-class job — cost ≥ 96 per compound — on its own
    /// dispatch.
    pub bundle_cost_cap: f64,
    /// Bound on jobs admitted per class lane; excess jobs wait in a
    /// staging backlog until the lane drains (backpressure between funnel
    /// stages). `0` disables the bound.
    pub lane_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_parallel_jobs: 4,
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            bundle_max: 8,
            bundle_cost_cap: 64.0,
            lane_capacity: 0,
        }
    }
}

/// Deterministic exponential backoff with jitter for retry `attempt` of
/// `job_id` (attempt 1 = first retry).
///
/// The delay is `base << (attempt-1)`, capped at `max`, scaled by a
/// jitter factor in `[0.5, 1.0]` derived from `(job_id, attempt)` via
/// `derive_seed` — the same `(job, attempt)` always backs off for the
/// same duration, so campaigns stay bit-reproducible, while distinct jobs
/// failing together de-synchronize instead of retrying in lockstep.
///
/// The exponential plateaus at 20 doublings: every attempt ≥ 21 draws
/// from the same `[0.5, 1.0] × min(base << 20, max)` envelope (only the
/// per-attempt jitter still varies), so huge attempt numbers can neither
/// overflow nor grow the delay further.
pub fn retry_backoff(base: Duration, max: Duration, job_id: u64, attempt: u32) -> Duration {
    if base.is_zero() || attempt == 0 {
        return Duration::ZERO;
    }
    let doublings = (attempt - 1).min(20);
    let exp = base.saturating_mul(1u32 << doublings);
    let capped = exp.min(max);
    let h = derive_seed(job_id, 0xB0FF ^ attempt as u64);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    capped.mul_f64(0.5 + 0.5 * unit)
}

/// Per-class dispatch accounting of one campaign run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LaneStats {
    /// The class this lane served.
    pub class: TaskClass,
    /// Worker dispatches that pulled from this lane.
    pub dispatches: u64,
    /// Jobs handed to workers from this lane (≥ `dispatches`).
    pub jobs_dispatched: u64,
    /// Dispatches that carried more than one job.
    pub bundles: u64,
    /// Jobs that rode in multi-job bundles.
    pub bundled_jobs: u64,
    /// Peak admitted-queue depth observed (the backpressure bound holds
    /// iff this stays ≤ `lane_capacity` plus in-flight retries).
    pub peak_occupancy: usize,
    /// Jobs from this lane that completed successfully.
    pub completed: u64,
    /// Total worker wall time spent running this lane's jobs.
    pub busy: Duration,
}

impl LaneStats {
    fn new(class: TaskClass) -> Self {
        LaneStats {
            class,
            dispatches: 0,
            jobs_dispatched: 0,
            bundles: 0,
            bundled_jobs: 0,
            peak_occupancy: 0,
            completed: 0,
            busy: Duration::ZERO,
        }
    }
}

/// Campaign-level outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Completed job outputs, in completion order.
    pub outputs: Vec<JobOutput>,
    /// Jobs that exhausted their attempts.
    pub abandoned: Vec<JobSpec>,
    /// Total failed attempts across the run (rescheduled jobs).
    pub failed_attempts: usize,
    /// Jobs restored from a checkpoint manifest instead of re-run
    /// (always 0 for [`run_campaign`]).
    pub jobs_resumed: usize,
    /// Fewest live workers observed at any retry re-queue — a liveness
    /// diagnostic. With the in-flight tracking fix this equals the worker
    /// pool size; workers exiting early shows up as a smaller value.
    /// `None` when no attempt failed.
    pub min_live_workers_at_retry: Option<usize>,
    /// Per-class lane accounting (dispatches, bundling, occupancy), in
    /// [`TaskClass::ALL`] order.
    pub lanes: [LaneStats; 4],
    /// Wall-clock duration of the whole campaign.
    pub wall_time: Duration,
}

impl CampaignReport {
    /// Total poses evaluated across every completed job.
    pub fn total_poses(&self) -> usize {
        self.outputs.iter().map(|o| o.timing.poses_evaluated).sum()
    }

    /// Aggregate poses/second over the campaign's wall time (via the
    /// shared [`dftrace::rate`] implementation).
    pub fn poses_per_sec(&self) -> f64 {
        dftrace::rate::per_sec(self.total_poses() as f64, self.wall_time.as_secs_f64())
    }

    /// Total worker dispatches across every lane.
    pub fn dispatches(&self) -> u64 {
        self.lanes.iter().map(|l| l.dispatches).sum()
    }

    /// Jobs that rode in multi-job bundles, across every lane.
    pub fn bundled_jobs(&self) -> u64 {
        self.lanes.iter().map(|l| l.bundled_jobs).sum()
    }
}

/// One class lane: the admitted working queue, the staging backlog that
/// absorbs overflow beyond `lane_capacity`, the stride-scheduling pass
/// value and the lane's accounting.
struct Lane {
    admitted: VecDeque<JobSpec>,
    backlog: VecDeque<JobSpec>,
    /// Stride-scheduling virtual time; the non-empty lane with the lowest
    /// pass is dispatched next.
    pass: u64,
    stride: u64,
    stats: LaneStats,
}

/// `STRIDE_ONE / dispatch_weight` gives each lane's stride; the constant
/// is divisible by every class weight so shares are exact.
const STRIDE_ONE: u64 = 840;

impl Lane {
    fn new(class: TaskClass) -> Self {
        Lane {
            admitted: VecDeque::new(),
            backlog: VecDeque::new(),
            pass: 0,
            stride: STRIDE_ONE / class.dispatch_weight(),
            stats: LaneStats::new(class),
        }
    }

    fn note_occupancy(&mut self) {
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.admitted.len());
    }
}

/// Shared scheduler state. `in_flight` is updated under the same lock as
/// the lanes so no worker can observe "all lanes empty, nothing in
/// flight" while a running job is about to re-queue itself; `delayed`
/// holds failed attempts waiting out their backoff deadline *off* the
/// worker threads.
struct SchedState {
    lanes: [Lane; 4],
    /// Retries not yet eligible: `(ready_at, spec)`.
    delayed: Vec<(Instant, JobSpec)>,
    in_flight: usize,
    live_workers: usize,
    min_live_at_retry: Option<usize>,
}

impl SchedState {
    fn new(specs: Vec<JobSpec>, live_workers: usize) -> Self {
        let mut st = SchedState {
            lanes: [
                Lane::new(TaskClass::Filter),
                Lane::new(TaskClass::Surrogate),
                Lane::new(TaskClass::Dock),
                Lane::new(TaskClass::Rescore),
            ],
            delayed: Vec::new(),
            in_flight: 0,
            live_workers,
            min_live_at_retry: None,
        };
        for spec in specs {
            st.lanes[spec.class.lane()].backlog.push_back(spec);
        }
        st
    }

    /// Moves deferred retries whose deadline has passed into their lane.
    /// Retries bypass the capacity bound — they were admitted once and
    /// re-enter directly, so backpressure can never deadlock a retry.
    fn promote_delayed(&mut self, now: Instant) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, spec) = self.delayed.swap_remove(i);
                let lane = &mut self.lanes[spec.class.lane()];
                lane.admitted.push_back(spec);
                lane.note_occupancy();
            } else {
                i += 1;
            }
        }
    }

    /// Admits backlog into each lane up to `capacity` (0 = unbounded).
    fn admit(&mut self, capacity: usize) {
        let mut moved = 0u64;
        for lane in &mut self.lanes {
            while !lane.backlog.is_empty() && (capacity == 0 || lane.admitted.len() < capacity) {
                let spec = lane.backlog.pop_front().expect("non-empty backlog");
                lane.admitted.push_back(spec);
                moved += 1;
            }
            lane.note_occupancy();
        }
        if moved > 0 {
            dftrace::counter_add("hts.sched.backlog_admitted", moved);
        }
    }

    /// Earliest deferred-retry deadline, if any.
    fn next_ready_at(&self) -> Option<Instant> {
        self.delayed.iter().map(|&(at, _)| at).min()
    }

    fn lanes_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.admitted.is_empty() && l.backlog.is_empty())
    }

    /// Claims the next dispatch: picks the non-empty admitted lane with
    /// the lowest stride pass, pops its head job, and — when the head is
    /// a short task — bundles up to `bundle_max` further short jobs from
    /// the same lane into the dispatch.
    fn claim(&mut self, cfg: &SchedulerConfig) -> Option<Vec<JobSpec>> {
        let mut pick: Option<usize> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.admitted.is_empty() {
                continue;
            }
            match pick {
                Some(p) if self.lanes[p].pass <= lane.pass => {}
                _ => pick = Some(i),
            }
        }
        let i = pick?;
        let lane = &mut self.lanes[i];
        lane.pass = lane.pass.wrapping_add(lane.stride);
        let first = lane.admitted.pop_front().expect("picked lane is non-empty");
        let bundleable = cfg.bundle_max > 1 && first.est_cost() <= cfg.bundle_cost_cap;
        let mut bundle = vec![first];
        if bundleable {
            while bundle.len() < cfg.bundle_max {
                match lane.admitted.front() {
                    Some(next) if next.est_cost() <= cfg.bundle_cost_cap => {
                        bundle.push(lane.admitted.pop_front().expect("peeked"));
                    }
                    _ => break,
                }
            }
        }
        let n = bundle.len() as u64;
        lane.stats.dispatches += 1;
        lane.stats.jobs_dispatched += n;
        if bundle.len() > 1 {
            lane.stats.bundles += 1;
            lane.stats.bundled_jobs += n;
        }
        Some(bundle)
    }
}

/// Runs every job, retrying failures, across the worker pool.
pub fn run_campaign(
    sched: &SchedulerConfig,
    job_cfg: &JobConfig,
    specs: Vec<JobSpec>,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
) -> CampaignReport {
    campaign_loop(sched, specs, &|spec| run_job(job_cfg, spec, factory, source), None)
}

/// Resumes (or starts) a checkpointed campaign.
///
/// Loads the manifest at `manifest_path` (creating it if absent), restores
/// every journaled completed job from its on-disk rank files, skips
/// journaled abandoned jobs, and runs only the remainder — journaling each
/// terminal event as it happens. The merged report is bit-identical to an
/// uninterrupted [`run_campaign`] over the same `specs`.
///
/// Requirements for bit-identical resume: the same `specs`, `job_cfg`
/// (rank layout decides record order) and scorer/pose source as the
/// interrupted run, and the rank files it wrote still on disk. A journaled
/// job whose rank files are missing or disagree with the journal is
/// quietly re-run rather than trusted.
pub fn resume_campaign(
    sched: &SchedulerConfig,
    job_cfg: &JobConfig,
    specs: Vec<JobSpec>,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
    manifest_path: impl AsRef<Path>,
) -> Result<CampaignReport, CheckpointError> {
    let (writer, loaded) = CheckpointWriter::open_or_create(manifest_path)?;

    // Index the journal by job id, keeping the latest entry per job.
    // Non-job entries (active-learning epoch markers) are not the
    // scheduler's to interpret and are skipped here.
    let mut journaled: std::collections::HashMap<u64, &ManifestEntry> =
        std::collections::HashMap::new();
    for entry in &loaded.entries {
        if let Some(job_id) = entry.job_id() {
            journaled.insert(job_id, entry);
        }
    }

    let mut restored: Vec<JobOutput> = Vec::new();
    let mut abandoned: Vec<JobSpec> = Vec::new();
    let mut remaining: Vec<JobSpec> = Vec::new();
    for spec in specs {
        match journaled.get(&spec.job_id) {
            Some(ManifestEntry::Completed { spec: done_spec, summary }) => {
                match reconstruct_output(job_cfg, done_spec, summary) {
                    Ok(out) => restored.push(out),
                    Err(_) => {
                        // Rank files vanished or disagree with the
                        // journal: the journal entry is unusable, re-run.
                        dftrace::counter_add("hts.resume_restore_failed", 1);
                        remaining.push(spec);
                    }
                }
            }
            Some(ManifestEntry::Abandoned { spec: dead_spec }) => {
                abandoned.push(dead_spec.clone());
            }
            // Epoch markers never enter the index (no job id), so a spec
            // can only miss the journal entirely.
            Some(ManifestEntry::Epoch { .. }) | None => remaining.push(spec),
        }
    }
    let resumed = restored.len();
    dftrace::counter_add("hts.resume_skipped", (resumed + abandoned.len()) as u64);
    dftrace::gauge_set("hts.jobs_resumed", resumed as f64);

    let journal = Mutex::new(writer);
    let mut report = campaign_loop(
        sched,
        remaining,
        &|spec| run_job(job_cfg, spec, factory, source),
        Some(&journal),
    );

    report.outputs.extend(restored);
    report.outputs.sort_by_key(|o| o.job_id);
    report.abandoned.extend(abandoned);
    report.abandoned.sort_by_key(|s| s.job_id);
    report.jobs_resumed = resumed;
    Ok(report)
}

/// Runs a campaign over an arbitrary job runner — the scheduling
/// machinery (lanes, bundling, backpressure, retries) without the docking
/// stack. Benchmarks and simulations inject scripted runners; a runner
/// returning `Err(JobError::NodeFailure { .. })` is retried exactly like
/// a real node death.
pub fn run_campaign_with<R>(
    sched: &SchedulerConfig,
    specs: Vec<JobSpec>,
    runner: &R,
) -> CampaignReport
where
    R: Fn(&JobSpec) -> Result<JobOutput, JobError> + Sync,
{
    campaign_loop(sched, specs, runner, None)
}

/// The campaign loop over an arbitrary job runner; `run_campaign` and
/// `resume_campaign` instantiate it with [`run_job`], tests and
/// [`run_campaign_with`] inject scripted runners.
///
/// When `journal` is given, every terminal job event is appended (and
/// fsynced) *before* the result is published, so a driver crash never
/// loses acknowledged work.
fn campaign_loop<R>(
    sched: &SchedulerConfig,
    specs: Vec<JobSpec>,
    runner: &R,
    journal: Option<&Mutex<CheckpointWriter>>,
) -> CampaignReport
where
    R: Fn(&JobSpec) -> Result<JobOutput, JobError> + Sync,
{
    let _campaign_span = dftrace::span("hts.campaign");
    let start = Instant::now();
    let workers = sched.max_parallel_jobs.max(1);
    let state = Mutex::new(SchedState::new(specs, workers));
    let work_cv = Condvar::new();
    let outputs: Mutex<Vec<JobOutput>> = Mutex::new(Vec::new());
    let abandoned: Mutex<Vec<JobSpec>> = Mutex::new(Vec::new());
    let failed_attempts = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                // Claim a dispatch (one job, or a bundle of short ones).
                // Exit only when every lane, the deferred-retry set and
                // the in-flight count are all empty — an in-flight
                // failure may still re-queue, and a deferred retry will
                // become ready.
                let bundle = {
                    let mut st = state.lock();
                    loop {
                        st.promote_delayed(Instant::now());
                        st.admit(sched.lane_capacity);
                        if let Some(bundle) = st.claim(sched) {
                            st.in_flight += bundle.len();
                            break Some(bundle);
                        }
                        if st.in_flight == 0 && st.delayed.is_empty() && st.lanes_empty() {
                            break None;
                        }
                        // Park until woken — or until the earliest
                        // deferred retry becomes ready, whichever is
                        // sooner.
                        match st.next_ready_at() {
                            Some(at) => {
                                let timeout = at.saturating_duration_since(Instant::now());
                                work_cv.wait_for(&mut st, timeout);
                            }
                            None => work_cv.wait(&mut st),
                        }
                    }
                };
                let Some(bundle) = bundle else {
                    let mut st = state.lock();
                    st.live_workers -= 1;
                    drop(st);
                    // Wake any parked sibling so it re-checks the exit
                    // condition.
                    work_cv.notify_all();
                    break;
                };
                let class = bundle[0].class;
                dftrace::counter_add("hts.sched.dispatches", 1);
                dftrace::counter_add(class.dispatched_counter(), bundle.len() as u64);
                if bundle.len() > 1 {
                    dftrace::counter_add("hts.sched.bundles", 1);
                    dftrace::counter_add("hts.sched.bundled_jobs", bundle.len() as u64);
                }

                // Pilot-style reuse: the worker runs the whole bundle
                // back to back, then returns to the lanes for whatever
                // class is next.
                let dispatch_start = Instant::now();
                for spec in bundle {
                    let job_start = Instant::now();
                    let result = runner(&spec);
                    dftrace::observe_duration("hts.job_us", job_start.elapsed());
                    match result {
                        Ok(out) => {
                            dftrace::counter_add("hts.jobs_completed", 1);
                            // Journal-then-publish: the entry is fsynced
                            // before the output becomes visible, so a
                            // crash cannot acknowledge work it would
                            // later forget.
                            if let Some(journal) = journal {
                                let entry = ManifestEntry::Completed {
                                    spec: spec.clone(),
                                    summary: summarize(&out),
                                };
                                if journal.lock().append(&entry).is_err() {
                                    dftrace::counter_add("hts.checkpoint_append_failed", 1);
                                }
                            }
                            outputs.lock().push(out);
                            let mut st = state.lock();
                            st.lanes[class.lane()].stats.completed += 1;
                            st.in_flight -= 1;
                            drop(st);
                            work_cv.notify_all();
                        }
                        Err(JobError::NodeFailure { .. }) => {
                            dftrace::counter_add("hts.jobs_failed", 1);
                            failed_attempts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let mut retry = spec;
                            retry.attempt += 1;
                            if retry.attempt < sched.max_attempts {
                                // Deterministic exponential backoff — but
                                // the worker never sleeps it out. The
                                // retry re-enters with a ready-at
                                // deadline and this thread immediately
                                // takes other work.
                                let backoff = retry_backoff(
                                    sched.base_backoff,
                                    sched.max_backoff,
                                    retry.job_id,
                                    retry.attempt,
                                );
                                let mut st = state.lock();
                                // Liveness diagnostic: how many workers
                                // are still alive to pick this retry up?
                                let live = st.live_workers;
                                st.min_live_at_retry =
                                    Some(st.min_live_at_retry.map_or(live, |m| m.min(live)));
                                if backoff.is_zero() {
                                    let lane = &mut st.lanes[retry.class.lane()];
                                    lane.admitted.push_back(retry);
                                    lane.note_occupancy();
                                } else {
                                    dftrace::counter_add("hts.backoff_retries", 1);
                                    dftrace::observe_duration("hts.backoff_us", backoff);
                                    st.delayed.push((Instant::now() + backoff, retry));
                                }
                                st.in_flight -= 1;
                                drop(st);
                                work_cv.notify_all();
                            } else {
                                if let Some(journal) = journal {
                                    let entry = ManifestEntry::Abandoned { spec: retry.clone() };
                                    if journal.lock().append(&entry).is_err() {
                                        dftrace::counter_add("hts.checkpoint_append_failed", 1);
                                    }
                                }
                                abandoned.lock().push(retry);
                                let mut st = state.lock();
                                st.in_flight -= 1;
                                drop(st);
                                work_cv.notify_all();
                            }
                        }
                    }
                }
                let mut st = state.lock();
                st.lanes[class.lane()].stats.busy += dispatch_start.elapsed();
            });
        }
    })
    .expect("scheduler worker panicked");

    let state = state.into_inner();
    let mut outputs = outputs.into_inner();
    outputs.sort_by_key(|o| o.job_id);
    let mut abandoned = abandoned.into_inner();
    abandoned.sort_by_key(|s| s.job_id);
    let lanes =
        [state.lanes[0].stats, state.lanes[1].stats, state.lanes[2].stats, state.lanes[3].stats];
    for l in &lanes {
        if l.jobs_dispatched > 0 {
            dftrace::gauge_set(l.class.occupancy_gauge(), l.peak_occupancy as f64);
        }
    }
    let report = CampaignReport {
        outputs,
        abandoned,
        failed_attempts: failed_attempts.into_inner(),
        jobs_resumed: 0,
        min_live_workers_at_retry: state.min_live_at_retry,
        lanes,
        wall_time: start.elapsed(),
    };
    // Same rate implementation the Table 7 model uses (dftrace::rate), so
    // the tracer and the throughput report can never disagree.
    dftrace::gauge_set("hts.poses_per_sec", report.poses_per_sec());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::h5lite::read_dir;
    use crate::job::{JobTiming, SyntheticPoseSource};
    use crate::scorer::VinaScorerFactory;
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfsched_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn specs(n: u64, per_job: u64) -> Vec<JobSpec> {
        class_specs(n, per_job, TaskClass::Dock)
    }

    fn class_specs(n: u64, per_job: u64, class: TaskClass) -> Vec<JobSpec> {
        (0..n)
            .map(|j| JobSpec {
                job_id: j,
                target: TargetSite::Spike1,
                library: Library::EnamineVirtual,
                first_compound: j * per_job,
                num_compounds: per_job,
                campaign_seed: 4,
                class,
                attempt: 0,
            })
            .collect()
    }

    fn job_cfg(dir: PathBuf, faults: FaultConfig) -> JobConfig {
        JobConfig { nodes: 1, ranks_per_node: 2, batch_size: 4, output_dir: dir, faults }
    }

    /// A JobOutput for scripted runners that never touch disk.
    fn stub_output(job_id: u64) -> JobOutput {
        JobOutput {
            job_id,
            records: Vec::new(),
            files: Vec::new(),
            faults: Vec::new(),
            write_retries: 0,
            timing: JobTiming {
                startup: Duration::ZERO,
                evaluate: Duration::ZERO,
                output: Duration::ZERO,
                poses_evaluated: 0,
            },
        }
    }

    #[test]
    fn all_jobs_complete_without_faults() {
        let dir = tmpdir("clean");
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 3, max_attempts: 2, ..Default::default() },
            &job_cfg(dir.clone(), FaultConfig::default()),
            specs(6, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
        );
        assert_eq!(report.outputs.len(), 6);
        assert!(report.abandoned.is_empty());
        assert_eq!(report.failed_attempts, 0);
        assert_eq!(report.jobs_resumed, 0);
        assert_eq!(report.min_live_workers_at_retry, None);
        assert_eq!(report.total_poses(), 6 * 4 * 2);
        assert!(report.poses_per_sec() > 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_jobs_are_rescheduled_and_finish() {
        let dir = tmpdir("retry");
        // Aggressive node failures; retries flip the outcome per attempt.
        let faults = FaultConfig { p_node_failure: 0.4, seed: 2, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 10, ..Default::default() },
            &job_cfg(dir.clone(), faults),
            specs(8, 3),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert!(report.failed_attempts > 0, "some attempts should fail");
        assert_eq!(report.outputs.len(), 8, "every job eventually completes");
        assert!(report.abandoned.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn permanently_failing_jobs_are_abandoned() {
        let dir = tmpdir("abandon");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 3, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 3, ..Default::default() },
            &job_cfg(dir.clone(), faults),
            specs(4, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert_eq!(report.abandoned.len(), 4);
        assert_eq!(report.failed_attempts, 12, "3 attempts per job");
        assert!(report.outputs.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parallelism_does_not_change_the_result_set() {
        let d1 = tmpdir("p1");
        let d2 = tmpdir("p4");
        let run = |dir: PathBuf, par: usize| {
            run_campaign(
                &SchedulerConfig { max_parallel_jobs: par, max_attempts: 2, ..Default::default() },
                &job_cfg(dir, FaultConfig::default()),
                specs(5, 3),
                &VinaScorerFactory,
                &SyntheticPoseSource { poses_per_compound: 2 },
            )
        };
        let a = run(d1.clone(), 1);
        let b = run(d2.clone(), 4);
        assert_eq!(a.outputs.len(), b.outputs.len());
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.job_id, y.job_id);
            assert_eq!(x.records.len(), y.records.len());
        }
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }

    /// Regression test for the scheduler liveness bug: workers used to
    /// exit as soon as the queue was momentarily empty, even with jobs in
    /// flight whose failure would re-queue work.
    ///
    /// Deterministic schedule with a scripted runner and 2 workers:
    /// job 1 completes instantly, after which its worker observes an
    /// empty queue while job 0 is still in flight. Old code: that worker
    /// exits, and when job 0 fails only 1 worker is left to take the
    /// retry (`min_live_workers_at_retry == 1`). Fixed code: the worker
    /// parks and is still alive at the re-queue.
    #[test]
    fn workers_wait_for_in_flight_jobs_instead_of_exiting() {
        let job1_done = std::sync::atomic::AtomicBool::new(false);
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            match (spec.job_id, spec.attempt) {
                (1, 0) => {
                    job1_done.store(true, Ordering::SeqCst);
                    Ok(stub_output(1))
                }
                (0, 0) => {
                    // Hold job 0 in flight until job 1's worker has had
                    // ample time to drain the queue and hit the empty
                    // check, then fail so the retry gets re-queued.
                    while !job1_done.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    std::thread::sleep(Duration::from_millis(100));
                    Err(JobError::NodeFailure { job_id: 0, node: 0 })
                }
                (0, _) => Ok(stub_output(0)),
                other => panic!("unexpected schedule {other:?}"),
            }
        };
        let report = campaign_loop(
            &SchedulerConfig {
                max_parallel_jobs: 2,
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                ..Default::default()
            },
            specs(2, 1),
            &runner,
            None,
        );
        assert_eq!(report.outputs.len(), 2, "both jobs complete");
        assert_eq!(report.failed_attempts, 1);
        assert_eq!(
            report.min_live_workers_at_retry,
            Some(2),
            "the idle worker must park, not exit, while job 0 is in flight"
        );
    }

    /// Both workers stay available through a *chain* of staggered
    /// failures — the cascade that used to serialize the whole tail of a
    /// campaign.
    #[test]
    fn retry_chains_keep_full_parallelism() {
        let fails_left = AtomicUsize::new(4);
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            std::thread::sleep(Duration::from_millis(5));
            if fails_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err(JobError::NodeFailure { job_id: spec.job_id, node: 0 })
            } else {
                Ok(stub_output(spec.job_id))
            }
        };
        let report = campaign_loop(
            &SchedulerConfig {
                max_parallel_jobs: 3,
                max_attempts: 10,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                ..Default::default()
            },
            specs(3, 1),
            &runner,
            None,
        );
        assert_eq!(report.outputs.len(), 3);
        assert_eq!(report.failed_attempts, 4);
        assert_eq!(report.min_live_workers_at_retry, Some(3), "no worker exited early");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let base = Duration::from_millis(2);
        let max = Duration::from_millis(50);
        // Deterministic: same (job, attempt) → same delay.
        assert_eq!(retry_backoff(base, max, 7, 1), retry_backoff(base, max, 7, 1));
        // Jitter: different jobs de-synchronize.
        assert_ne!(retry_backoff(base, max, 7, 1), retry_backoff(base, max, 8, 1));
        // Exponential envelope with jitter in [0.5, 1.0] × capped value.
        for attempt in 1..8u32 {
            let nominal = base.saturating_mul(1u32 << (attempt - 1)).min(max);
            for job in 0..20u64 {
                let d = retry_backoff(base, max, job, attempt);
                assert!(d >= nominal.mul_f64(0.5), "attempt {attempt} job {job}: {d:?}");
                assert!(d <= nominal, "attempt {attempt} job {job}: {d:?}");
            }
        }
        // Attempt 0 and zero base disable backoff.
        assert_eq!(retry_backoff(base, max, 1, 0), Duration::ZERO);
        assert_eq!(retry_backoff(Duration::ZERO, max, 1, 3), Duration::ZERO);
        // Huge attempt numbers saturate instead of overflowing.
        assert!(retry_backoff(base, max, 1, u32::MAX) <= max);
    }

    /// Attempt ≥ 21 plateaus: the exponential stops at 20 doublings and
    /// every later attempt draws from the same jittered envelope.
    #[test]
    fn backoff_plateaus_after_twenty_doublings() {
        // Uncapped: base << 20 = ~1049 s. Every attempt past the plateau
        // must land in [0.5, 1.0] × that — never above it, never below
        // half of it, and never zero.
        let base = Duration::from_micros(1000);
        let max = Duration::from_secs(1 << 20);
        let plateau = base.saturating_mul(1 << 20);
        for attempt in [21u32, 22, 100, 1000, u32::MAX] {
            for job in 0..10u64 {
                let d = retry_backoff(base, max, job, attempt);
                assert!(d >= plateau.mul_f64(0.5), "attempt {attempt}: {d:?} below envelope");
                assert!(d <= plateau, "attempt {attempt}: {d:?} above plateau");
            }
        }
    }

    #[test]
    fn resumed_campaign_is_bit_identical_to_uninterrupted() {
        let clean_dir = tmpdir("resume_clean");
        let crash_dir = tmpdir("resume_crash");
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 4, ..Default::default() };
        let faults =
            FaultConfig { p_node_failure: 0.25, p_broken_pipe: 0.2, seed: 9, ..Default::default() };
        let source = SyntheticPoseSource { poses_per_compound: 2 };

        // Uninterrupted reference run.
        let clean = run_campaign(
            &sched,
            &job_cfg(clean_dir.clone(), faults),
            specs(6, 4),
            &VinaScorerFactory,
            &source,
        );
        assert_eq!(clean.outputs.len(), 6);

        // "Crashed" run: the driver dies after 3 of 6 jobs. Simulated by
        // journaling exactly what the scheduler would have journaled for
        // the first 3 jobs (running them for real), then dropping the
        // writer mid-entry to leave a torn tail.
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        {
            let mut w = CheckpointWriter::create(&manifest).unwrap();
            for spec in specs(3, 4) {
                let mut spec = spec;
                let out = loop {
                    match run_job(&crash_cfg, &spec, &VinaScorerFactory, &source) {
                        Ok(out) => break out,
                        Err(_) => spec.attempt += 1,
                    }
                };
                w.append(&ManifestEntry::Completed { spec, summary: summarize(&out) }).unwrap();
            }
            drop(w);
            // Torn tail: the driver died mid-append on job 3.
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&120u32.to_le_bytes()).unwrap();
            f.write_all(b"half a frame").unwrap();
        }

        // Resume over the full spec list: only jobs 3..6 re-run.
        let resumed = resume_campaign(
            &sched,
            &crash_cfg,
            specs(6, 4),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(resumed.jobs_resumed, 3);
        assert_eq!(resumed.outputs.len(), 6);

        // Bit-identical result set: same jobs, same records, same order,
        // same scores to the last bit.
        for (a, b) in clean.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.job_id, b.job_id);
            assert_eq!(a.records, b.records, "job {} records differ", a.job_id);
            assert_eq!(a.faults, b.faults, "job {} fault log differs", a.job_id);
        }
        // And the merged on-disk view agrees between the two directories.
        let mut on_disk_clean = read_dir(&clean_dir).unwrap();
        let mut on_disk_crash = read_dir(&crash_dir).unwrap();
        let key = |r: &crate::h5lite::ScoreRecord| (r.compound.index, r.pose_rank);
        on_disk_clean.sort_by_key(key);
        on_disk_crash.sort_by_key(key);
        assert_eq!(on_disk_clean, on_disk_crash);

        // Resuming again re-runs nothing and still reports everything.
        let again = resume_campaign(
            &sched,
            &crash_cfg,
            specs(6, 4),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(again.jobs_resumed, 6);
        assert_eq!(again.failed_attempts, 0, "nothing re-ran");
        for (a, b) in clean.outputs.iter().zip(&again.outputs) {
            assert_eq!(a.records, b.records);
        }

        std::fs::remove_dir_all(clean_dir).ok();
        std::fs::remove_dir_all(crash_dir).ok();
    }

    #[test]
    fn resume_rejects_a_corrupt_manifest_gracefully() {
        let dir = tmpdir("resume_corrupt");
        let manifest = dir.join("campaign.dfcp");
        std::fs::write(&manifest, b"GARBAGE!").unwrap();
        let err = resume_campaign(
            &SchedulerConfig::default(),
            &job_cfg(dir.clone(), FaultConfig::default()),
            specs(2, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
            &manifest,
        );
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_reruns_jobs_whose_rank_files_were_lost() {
        let dir = tmpdir("resume_lostfiles");
        let cfg = job_cfg(dir.clone(), FaultConfig::default());
        let manifest = dir.join("campaign.dfcp");
        let source = SyntheticPoseSource { poses_per_compound: 1 };
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 2, ..Default::default() };

        let first =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(first.outputs.len(), 3);
        // Delete job 1's rank files out from under the journal.
        for f in &first.outputs[1].files {
            std::fs::remove_file(f).unwrap();
        }
        let resumed =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(resumed.outputs.len(), 3, "job 1 was re-run, not lost");
        assert_eq!(resumed.jobs_resumed, 2);
        for (a, b) in first.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.records, b.records, "re-run reproduces the records");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn abandoned_jobs_are_journaled_and_skipped_on_resume() {
        let dir = tmpdir("resume_abandoned");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 3, ..Default::default() };
        let cfg = job_cfg(dir.clone(), faults);
        let manifest = dir.join("campaign.dfcp");
        let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 2, ..Default::default() };
        let source = SyntheticPoseSource { poses_per_compound: 1 };

        let first =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(first.abandoned.len(), 3);
        assert_eq!(first.failed_attempts, 6);

        let resumed =
            resume_campaign(&sched, &cfg, specs(3, 2), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(resumed.abandoned.len(), 3, "abandonment is remembered");
        assert_eq!(resumed.failed_attempts, 0, "no attempts were re-burned");
        // The journaled specs carry the final attempt count.
        assert!(resumed.abandoned.iter().all(|s| s.attempt == 2));
        std::fs::remove_dir_all(dir).ok();
    }

    /// Short filter-class jobs ride in multi-job bundles; every job still
    /// completes exactly once.
    #[test]
    fn short_tasks_are_bundled_and_all_complete() {
        let runner =
            |spec: &JobSpec| -> Result<JobOutput, JobError> { Ok(stub_output(spec.job_id)) };
        let report = run_campaign_with(
            &SchedulerConfig {
                max_parallel_jobs: 1,
                bundle_max: 8,
                bundle_cost_cap: 64.0,
                ..Default::default()
            },
            class_specs(24, 16, TaskClass::Filter), // est_cost 16 each
            &runner,
        );
        assert_eq!(report.outputs.len(), 24);
        let lane = &report.lanes[TaskClass::Filter.lane()];
        assert_eq!(lane.jobs_dispatched, 24);
        assert_eq!(lane.completed, 24);
        assert_eq!(lane.dispatches, 3, "24 short jobs in bundles of 8");
        assert_eq!(lane.bundles, 3);
        assert_eq!(lane.bundled_jobs, 24);
        assert_eq!(report.dispatches(), 3);
        assert_eq!(report.bundled_jobs(), 24);
    }

    /// Surrogate jobs actually bundle. At the recalibrated cost weight
    /// (2.0, measured ~2x a rule-filter pass), a 32-compound surrogate
    /// job estimates at 64 — exactly the default bundle cap — so the
    /// active-learning driver's standard job shape rides in multi-job
    /// bundles. The old guessed weight (6.0) priced the same job at 192
    /// and silently disabled bundling for the whole surrogate lane.
    #[test]
    fn surrogate_jobs_ride_in_bundles() {
        let shape = class_specs(1, 32, TaskClass::Surrogate).remove(0);
        assert!(
            shape.est_cost() <= SchedulerConfig::default().bundle_cost_cap,
            "32-compound surrogate jobs must be bundleable (est {})",
            shape.est_cost()
        );
        let runner =
            |spec: &JobSpec| -> Result<JobOutput, JobError> { Ok(stub_output(spec.job_id)) };
        let report = run_campaign_with(
            &SchedulerConfig { max_parallel_jobs: 1, ..Default::default() },
            class_specs(16, 32, TaskClass::Surrogate),
            &runner,
        );
        let lane = &report.lanes[TaskClass::Surrogate.lane()];
        assert_eq!(lane.completed, 16);
        assert_eq!(lane.dispatches, 2, "16 surrogate jobs in bundles of 8");
        assert_eq!(lane.bundles, 2);
        assert_eq!(lane.bundled_jobs, 16);
    }

    /// Dock-class jobs cost more than the bundle cap, so each gets its
    /// own dispatch — bundling never batches long tasks.
    #[test]
    fn bundling_respects_the_cost_cap() {
        let runner =
            |spec: &JobSpec| -> Result<JobOutput, JobError> { Ok(stub_output(spec.job_id)) };
        let report = run_campaign_with(
            &SchedulerConfig { max_parallel_jobs: 1, ..Default::default() },
            specs(10, 1), // dock: est_cost 96 > default cap 64
            &runner,
        );
        let lane = &report.lanes[TaskClass::Dock.lane()];
        assert_eq!(lane.dispatches, 10, "one dispatch per dock job");
        assert_eq!(lane.bundles, 0);
        assert_eq!(report.bundled_jobs(), 0);
    }

    /// With one worker, the stride lanes interleave classes by dispatch
    /// weight instead of draining one class FIFO-first: dock (weight 8)
    /// gets 8 dispatches for every filter (weight 1) dispatch.
    #[test]
    fn lanes_share_dispatch_by_weighted_priority() {
        let order: Mutex<Vec<TaskClass>> = Mutex::new(Vec::new());
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            order.lock().push(spec.class);
            Ok(stub_output(spec.job_id))
        };
        let mut all = class_specs(3, 1, TaskClass::Filter);
        let mut docks = class_specs(24, 1, TaskClass::Dock);
        for (i, d) in docks.iter_mut().enumerate() {
            d.job_id = 100 + i as u64; // ids must be unique across lanes
        }
        all.extend(docks);
        let report = run_campaign_with(
            &SchedulerConfig {
                max_parallel_jobs: 1,
                bundle_max: 1, // one job per dispatch → order is legible
                ..Default::default()
            },
            all,
            &runner,
        );
        assert_eq!(report.outputs.len(), 27);
        let order = order.into_inner();
        // Filter's stride is 8× dock's: between consecutive filter
        // dispatches the scheduler issues ~8 dock dispatches, so the
        // filter lane neither starves nor swamps the dock lane.
        let filter_pos: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == TaskClass::Filter)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(filter_pos.len(), 3);
        for w in filter_pos.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                (7..=9).contains(&gap),
                "filter dispatches should be ~8 apart, got gap {gap} in {order:?}"
            );
        }
    }

    /// `lane_capacity` bounds the admitted queue: a flood of dock jobs
    /// stages in the backlog and the lane's peak occupancy stays at the
    /// bound.
    #[test]
    fn lane_capacity_bounds_admitted_occupancy() {
        let runner =
            |spec: &JobSpec| -> Result<JobOutput, JobError> { Ok(stub_output(spec.job_id)) };
        let report = run_campaign_with(
            &SchedulerConfig { max_parallel_jobs: 2, lane_capacity: 4, ..Default::default() },
            specs(40, 1),
            &runner,
        );
        assert_eq!(report.outputs.len(), 40, "backpressure must not lose jobs");
        let lane = &report.lanes[TaskClass::Dock.lane()];
        assert!(
            lane.peak_occupancy <= 4,
            "admitted dock queue peaked at {} > capacity 4",
            lane.peak_occupancy
        );
    }

    /// The backoff fix: a failed attempt's backoff must not hold its
    /// worker slot. With ONE worker, job 0 fails and backs off ~80 ms;
    /// jobs 1 and 2 must run during that window, not after it.
    #[test]
    fn retries_wait_out_backoff_without_holding_a_worker() {
        let order: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let runner = |spec: &JobSpec| -> Result<JobOutput, JobError> {
            order.lock().push(spec.job_id);
            if spec.job_id == 0 && spec.attempt == 0 {
                Err(JobError::NodeFailure { job_id: 0, node: 0 })
            } else {
                Ok(stub_output(spec.job_id))
            }
        };
        let start = Instant::now();
        let report = run_campaign_with(
            &SchedulerConfig {
                max_parallel_jobs: 1,
                max_attempts: 3,
                base_backoff: Duration::from_millis(80),
                max_backoff: Duration::from_millis(80),
                ..Default::default()
            },
            specs(3, 1),
            &runner,
        );
        let wall = start.elapsed();
        assert_eq!(report.outputs.len(), 3);
        assert_eq!(report.failed_attempts, 1);
        let order = order.into_inner();
        assert_eq!(
            order,
            vec![0, 1, 2, 0],
            "jobs 1 and 2 must run while job 0 waits out its backoff"
        );
        // The whole campaign is one backoff window plus epsilon — the old
        // sleep-on-worker behaviour would have been fine here too (1
        // worker), but the order assertion above is what pins the fix;
        // the wall bound just catches pathological over-waiting.
        assert!(wall < Duration::from_millis(2000), "campaign took {wall:?}");
    }

    /// A heterogeneous campaign (all four classes, bundling and
    /// backpressure on) resumed from a torn manifest is bit-identical to
    /// its uninterrupted twin.
    #[test]
    fn heterogeneous_campaign_resumes_bit_identically() {
        let clean_dir = tmpdir("het_clean");
        let crash_dir = tmpdir("het_crash");
        let sched = SchedulerConfig {
            max_parallel_jobs: 2,
            max_attempts: 4,
            lane_capacity: 3,
            ..Default::default()
        };
        let faults = FaultConfig { p_node_failure: 0.2, seed: 17, ..Default::default() };
        let source = SyntheticPoseSource { poses_per_compound: 2 };
        let mixed = || -> Vec<JobSpec> {
            (0..12u64)
                .map(|j| JobSpec {
                    job_id: j,
                    target: TargetSite::ALL[(j % 4) as usize],
                    library: Library::EnamineVirtual,
                    first_compound: j * 8,
                    num_compounds: 4 + j % 3,
                    campaign_seed: 4,
                    class: TaskClass::ALL[(j % 4) as usize],
                    attempt: 0,
                })
                .collect()
        };

        let clean = run_campaign(
            &sched,
            &job_cfg(clean_dir.clone(), faults),
            mixed(),
            &VinaScorerFactory,
            &source,
        );
        assert_eq!(clean.outputs.len(), 12);

        // Journal the first 5 jobs as a crashed driver would have, torn
        // tail included, then resume the full campaign.
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        {
            let mut w = CheckpointWriter::create(&manifest).unwrap();
            for spec in mixed().into_iter().take(5) {
                let mut spec = spec;
                let out = loop {
                    match run_job(&crash_cfg, &spec, &VinaScorerFactory, &source) {
                        Ok(out) => break out,
                        Err(_) => spec.attempt += 1,
                    }
                };
                w.append(&ManifestEntry::Completed { spec, summary: summarize(&out) }).unwrap();
            }
            drop(w);
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(b"torn").unwrap();
        }
        let resumed =
            resume_campaign(&sched, &crash_cfg, mixed(), &VinaScorerFactory, &source, &manifest)
                .unwrap();
        assert_eq!(resumed.jobs_resumed, 5);
        assert_eq!(resumed.outputs.len(), 12);
        for (a, b) in clean.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.job_id, b.job_id);
            assert_eq!(a.records, b.records, "job {} records differ", a.job_id);
        }
        std::fs::remove_dir_all(clean_dir).ok();
        std::fs::remove_dir_all(crash_dir).ok();
    }
}
