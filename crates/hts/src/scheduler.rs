//! Fault-tolerant campaign scheduler.
//!
//! Runs many evaluation jobs across a bounded pool of "node allocations"
//! (worker threads), re-queueing failed jobs with an incremented attempt
//! counter. This reproduces the paper's operational design: "when a job
//! fails it has minimal impact on overall throughput (another job takes
//! its place) ... and only a small set of compounds are affected or need
//! to be rescheduled" (§4.2).

use crate::job::{run_job, JobConfig, JobError, JobOutput, JobSpec, PoseSource};
use crate::scorer::ScorerFactory;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Scheduler limits.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Jobs running concurrently (the paper "regularly ran more than 10").
    pub max_parallel_jobs: usize,
    /// Attempts per job before giving up.
    pub max_attempts: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self { max_parallel_jobs: 4, max_attempts: 5 }
    }
}

/// Campaign-level outcome.
#[derive(Debug)]
pub struct CampaignReport {
    pub outputs: Vec<JobOutput>,
    /// Jobs that exhausted their attempts.
    pub abandoned: Vec<JobSpec>,
    /// Total failed attempts across the run (rescheduled jobs).
    pub failed_attempts: usize,
    pub wall_time: Duration,
}

impl CampaignReport {
    pub fn total_poses(&self) -> usize {
        self.outputs.iter().map(|o| o.timing.poses_evaluated).sum()
    }

    /// Aggregate poses/second over the campaign's wall time (via the
    /// shared [`dftrace::rate`] implementation).
    pub fn poses_per_sec(&self) -> f64 {
        dftrace::rate::per_sec(self.total_poses() as f64, self.wall_time.as_secs_f64())
    }
}

/// Runs every job, retrying failures, across the worker pool.
pub fn run_campaign(
    sched: &SchedulerConfig,
    job_cfg: &JobConfig,
    specs: Vec<JobSpec>,
    factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
) -> CampaignReport {
    let _campaign_span = dftrace::span("hts.campaign");
    let start = Instant::now();
    let queue: Mutex<VecDeque<JobSpec>> = Mutex::new(specs.into());
    let outputs: Mutex<Vec<JobOutput>> = Mutex::new(Vec::new());
    let abandoned: Mutex<Vec<JobSpec>> = Mutex::new(Vec::new());
    let failed_attempts = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|s| {
        for _ in 0..sched.max_parallel_jobs.max(1) {
            s.spawn(|_| loop {
                let Some(spec) = queue.lock().pop_front() else { break };
                let job_start = Instant::now();
                let result = run_job(job_cfg, &spec, factory, source);
                dftrace::observe_duration("hts.job_us", job_start.elapsed());
                match result {
                    Ok(out) => {
                        dftrace::counter_add("hts.jobs_completed", 1);
                        outputs.lock().push(out)
                    }
                    Err(JobError::NodeFailure { .. }) => {
                        dftrace::counter_add("hts.jobs_failed", 1);
                        failed_attempts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let mut retry = spec;
                        retry.attempt += 1;
                        if retry.attempt < sched.max_attempts {
                            // Another job takes its place: push to the back.
                            queue.lock().push_back(retry);
                        } else {
                            abandoned.lock().push(retry);
                        }
                    }
                }
            });
        }
    })
    .expect("scheduler worker panicked");

    let mut outputs = outputs.into_inner();
    outputs.sort_by_key(|o| o.job_id);
    let report = CampaignReport {
        outputs,
        abandoned: abandoned.into_inner(),
        failed_attempts: failed_attempts.into_inner(),
        wall_time: start.elapsed(),
    };
    // Same rate implementation the Table 7 model uses (dftrace::rate), so
    // the tracer and the throughput report can never disagree.
    dftrace::gauge_set("hts.poses_per_sec", report.poses_per_sec());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::job::SyntheticPoseSource;
    use crate::scorer::VinaScorerFactory;
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfsched_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn specs(n: u64, per_job: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|j| JobSpec {
                job_id: j,
                target: TargetSite::Spike1,
                library: Library::EnamineVirtual,
                first_compound: j * per_job,
                num_compounds: per_job,
                campaign_seed: 4,
                attempt: 0,
            })
            .collect()
    }

    fn job_cfg(dir: PathBuf, faults: FaultConfig) -> JobConfig {
        JobConfig { nodes: 1, ranks_per_node: 2, batch_size: 4, output_dir: dir, faults }
    }

    #[test]
    fn all_jobs_complete_without_faults() {
        let dir = tmpdir("clean");
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 3, max_attempts: 2 },
            &job_cfg(dir.clone(), FaultConfig::default()),
            specs(6, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
        );
        assert_eq!(report.outputs.len(), 6);
        assert!(report.abandoned.is_empty());
        assert_eq!(report.failed_attempts, 0);
        assert_eq!(report.total_poses(), 6 * 4 * 2);
        assert!(report.poses_per_sec() > 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_jobs_are_rescheduled_and_finish() {
        let dir = tmpdir("retry");
        // Aggressive node failures; retries flip the outcome per attempt.
        let faults = FaultConfig { p_node_failure: 0.4, seed: 2, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 10 },
            &job_cfg(dir.clone(), faults),
            specs(8, 3),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert!(report.failed_attempts > 0, "some attempts should fail");
        assert_eq!(report.outputs.len(), 8, "every job eventually completes");
        assert!(report.abandoned.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn permanently_failing_jobs_are_abandoned() {
        let dir = tmpdir("abandon");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 3, ..Default::default() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 3 },
            &job_cfg(dir.clone(), faults),
            specs(4, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        );
        assert_eq!(report.abandoned.len(), 4);
        assert_eq!(report.failed_attempts, 12, "3 attempts per job");
        assert!(report.outputs.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parallelism_does_not_change_the_result_set() {
        let d1 = tmpdir("p1");
        let d2 = tmpdir("p4");
        let run = |dir: PathBuf, par: usize| {
            run_campaign(
                &SchedulerConfig { max_parallel_jobs: par, max_attempts: 2 },
                &job_cfg(dir, FaultConfig::default()),
                specs(5, 3),
                &VinaScorerFactory,
                &SyntheticPoseSource { poses_per_compound: 2 },
            )
        };
        let a = run(d1.clone(), 1);
        let b = run(d2.clone(), 4);
        assert_eq!(a.outputs.len(), b.outputs.len());
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.job_id, y.job_id);
            assert_eq!(x.records.len(), y.records.len());
        }
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }
}
