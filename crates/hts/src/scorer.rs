//! Pose scorers pluggable into evaluation jobs.
//!
//! A [`Scorer`] evaluates batches of ligand poses against a pocket; a
//! [`ScorerFactory`] builds one scorer per rank (each rank owns its model
//! instance, exactly as each GPU holds its own copy of the Coherent Fusion
//! model in the paper's Figure 3). Three scorers mirror the campaign's
//! three energy calculations: Vina, MM/GBSA and Deep Fusion.

use dfchem::featurize::{build_graph_batch, voxelize_batch, GraphConfig, VoxelConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;
use dfdock::mmgbsa::{mmgbsa_score, MmGbsaConfig};
use dfdock::vina::vina_score;
use dffusion::batch_graph::BatchedGraph;
use dffusion::fusion::FusionModel;
use dftensor::params::ParamStore;
use dftensor::Graph;

/// Scores batches of poses. Higher-is-stronger for fusion (pK); physics
/// scorers return raw (negative) energies.
pub trait Scorer: Send {
    /// Short scorer name for reports and metric labels.
    fn name(&self) -> &'static str;
    /// Scores each pose against the pocket, in pose order.
    fn score_poses(&mut self, poses: &[Molecule], pocket: &BindingPocket) -> Vec<f64>;
}

/// Builds per-rank scorer instances.
pub trait ScorerFactory: Sync {
    /// Builds one rank-private scorer instance.
    fn build(&self) -> Box<dyn Scorer>;
    /// Short scorer name for reports and metric labels.
    fn name(&self) -> &'static str;
}

/// AutoDock-Vina-style scorer (stateless).
pub struct VinaScorer;

impl Scorer for VinaScorer {
    fn name(&self) -> &'static str {
        "vina"
    }
    fn score_poses(&mut self, poses: &[Molecule], pocket: &BindingPocket) -> Vec<f64> {
        poses.iter().map(|p| vina_score(p, pocket).total).collect()
    }
}

/// Factory for [`VinaScorer`].
pub struct VinaScorerFactory;

impl ScorerFactory for VinaScorerFactory {
    fn build(&self) -> Box<dyn Scorer> {
        Box::new(VinaScorer)
    }
    fn name(&self) -> &'static str {
        "vina"
    }
}

/// MM/GBSA re-scorer.
pub struct MmGbsaScorer {
    /// Force-field and solvation parameters.
    pub config: MmGbsaConfig,
}

impl Scorer for MmGbsaScorer {
    fn name(&self) -> &'static str {
        "mmgbsa"
    }
    fn score_poses(&mut self, poses: &[Molecule], pocket: &BindingPocket) -> Vec<f64> {
        poses.iter().map(|p| mmgbsa_score(&self.config, p, pocket).total).collect()
    }
}

/// Factory for [`MmGbsaScorer`].
pub struct MmGbsaScorerFactory(pub MmGbsaConfig);

impl ScorerFactory for MmGbsaScorerFactory {
    fn build(&self) -> Box<dyn Scorer> {
        Box::new(MmGbsaScorer { config: self.0 })
    }
    fn name(&self) -> &'static str {
        "mmgbsa"
    }
}

/// Deep Fusion scorer: featurizes each pose into both representations and
/// runs the fusion model in eval mode.
pub struct FusionScorer {
    model: FusionModel,
    params: ParamStore,
    voxel: VoxelConfig,
    graph: GraphConfig,
    /// Inference micro-batch size (the paper loads 56 poses per batch).
    pub batch_size: usize,
}

impl Scorer for FusionScorer {
    fn name(&self) -> &'static str {
        "fusion"
    }
    fn score_poses(&mut self, poses: &[Molecule], pocket: &BindingPocket) -> Vec<f64> {
        let mut out = Vec::with_capacity(poses.len());
        for chunk in poses.chunks(self.batch_size.max(1)) {
            // Both featurizations fan out per pose on the current pool and
            // collect by index, so the assembled batch is bit-identical to
            // the serial loop.
            let refs: Vec<&Molecule> = chunk.iter().collect();
            let graphs = build_graph_batch(&self.graph, &refs, pocket);
            let bg = BatchedGraph::from_graphs(&graphs);
            let per = dftensor::shape::numel(&self.voxel.shape());
            let mut shape = vec![chunk.len()];
            shape.extend_from_slice(&self.voxel.shape());
            let mut voxels = dftensor::Tensor::zeros(&shape);
            for (i, v) in voxelize_batch(&self.voxel, &refs, pocket).iter().enumerate() {
                voxels.data_mut()[i * per..(i + 1) * per].copy_from_slice(v.data());
            }
            let mut g = Graph::new();
            let pred = self.model.forward(&mut g, &self.params, &voxels, &bg, false);
            out.extend(g.value(pred).data().iter().map(|&v| v as f64));
        }
        out
    }
}

/// Factory that clones a trained fusion model (weights + featurization
/// configs) for every rank.
pub struct FusionScorerFactory {
    /// Trained fusion architecture to clone per rank.
    pub model: FusionModel,
    /// Trained weights.
    pub params: ParamStore,
    /// Voxelization settings for the 3D-CNN branch.
    pub voxel: VoxelConfig,
    /// Graph-building settings for the SG-CNN branch.
    pub graph: GraphConfig,
    /// Poses per inference batch.
    pub batch_size: usize,
}

impl ScorerFactory for FusionScorerFactory {
    fn build(&self) -> Box<dyn Scorer> {
        Box::new(FusionScorer {
            model: self.model.clone(),
            params: self.params.clone(),
            voxel: self.voxel,
            graph: self.graph,
            batch_size: self.batch_size,
        })
    }
    fn name(&self) -> &'static str {
        "fusion"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::pocket::TargetSite;
    use dffusion::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};

    fn poses(n: u64) -> (Vec<Molecule>, BindingPocket) {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 7);
        let poses = (0..n)
            .map(|i| {
                let mut m = generate_molecule(
                    &MolGenConfig { min_heavy: 6, max_heavy: 10, ..Default::default() },
                    "m",
                    i,
                );
                let c = m.centroid();
                m.translate(c.scale(-1.0));
                m
            })
            .collect();
        (poses, pocket)
    }

    fn fusion_factory() -> FusionScorerFactory {
        let mut params = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let sg = SgCnnConfig {
            covalent_gather_width: 4,
            noncovalent_gather_width: 6,
            covalent_k: 1,
            noncovalent_k: 1,
            ..SgCnnConfig::table2()
        };
        let cnn = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 4,
            num_dense_nodes: 8,
            ..Cnn3dConfig::table3()
        };
        let model = FusionModel::new(
            &FusionConfig { num_dense_nodes: 8, ..FusionConfig::small(FusionKind::Coherent) },
            &sg,
            &cnn,
            &voxel,
            &mut params,
            5,
        );
        FusionScorerFactory { model, params, voxel, graph: GraphConfig::default(), batch_size: 3 }
    }

    #[test]
    fn vina_and_mmgbsa_scorers_run() {
        let (poses, pocket) = poses(4);
        let mut v = VinaScorerFactory.build();
        let mut m =
            MmGbsaScorerFactory(MmGbsaConfig { born_iterations: 2, ..Default::default() }).build();
        assert_eq!(v.score_poses(&poses, &pocket).len(), 4);
        assert_eq!(m.score_poses(&poses, &pocket).len(), 4);
    }

    #[test]
    fn fusion_scorer_batches_consistently() {
        let (poses, pocket) = poses(7);
        let factory = fusion_factory();
        let mut s1 = factory.build();
        let all = s1.score_poses(&poses, &pocket);
        assert_eq!(all.len(), 7);
        // Scoring one-by-one must agree with batched scoring.
        let mut s2 = factory.build();
        for (i, p) in poses.iter().enumerate() {
            let one = s2.score_poses(std::slice::from_ref(p), &pocket)[0];
            assert!((one - all[i]).abs() < 1e-4, "pose {i}: {one} vs {}", all[i]);
        }
    }

    #[test]
    fn per_rank_scorers_are_independent_but_identical() {
        let (poses, pocket) = poses(3);
        let factory = fusion_factory();
        let mut a = factory.build();
        let mut b = factory.build();
        assert_eq!(a.score_poses(&poses, &pocket), b.score_poses(&poses, &pocket));
    }
}
