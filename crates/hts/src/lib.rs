//! `dfhts` — the high-throughput screening substrate.
//!
//! Replaces the Lassen + LSF + Horovod/MPI + HDF5 stack of §4:
//!
//! * [`prefilter`] — the ligand-only triage stage ahead of docking:
//!   drug-likeness filtering, fingerprint scoring and shortlist selection
//!   over `dfchem`'s streaming pipeline (see `docs/CHEMISTRY.md`);
//! * [`cluster`] — node/rank resource model (Lassen shapes);
//! * [`scorer`] — pluggable pose scorers (Vina, MM/GBSA, Deep Fusion);
//! * [`job`] — 16-rank evaluation jobs with round-robin compound
//!   assignment, batched inference, allgather and parallel file output
//!   (Figure 3);
//! * [`fault`] + [`scheduler`] — fault injection and the reschedule-on-
//!   failure campaign loop: heterogeneous [`job::TaskClass`] queue lanes
//!   under weighted (stride) priority, short-task bundling, bounded
//!   lane backpressure, and deterministic exponential retry backoff
//!   served off the worker threads via ready-at deadlines;
//! * [`checkpoint`] — the crash-safe campaign manifest: terminal job
//!   events are journaled (fsynced, torn tails dropped on load) so
//!   [`resume_campaign`] can restart a killed driver and produce a result
//!   set bit-identical to an uninterrupted run;
//! * [`active`] — the active-learning campaign driver: per epoch, a
//!   `dfsurrogate` fingerprint-MLP ranks the library (dispatched as
//!   [`job::TaskClass::Surrogate`] jobs), the top slice routes into dock
//!   jobs, the new poses retrain the surrogate, and the weights hot-swap
//!   through its registry — with epoch state journaled in the checkpoint
//!   manifest so a killed campaign resumes bit-identically;
//! * [`allgather`] — MPI-style collectives over rank threads;
//! * [`h5lite`] — the chunked binary result format standing in for HDF5,
//!   written atomically (`*.tmp` + `sync_all` + rename) so killed jobs
//!   never leave readable partial files;
//! * [`throughput`] — measured rates plus the calibrated Lassen model
//!   behind Table 7 and the §4.2 speedups. All rate arithmetic routes
//!   through `dftrace::rate`, the workspace's single compounds/s
//!   implementation.
//!
//! Jobs run their ranks as real threads; inner parallel loops use the
//! global `dfpool` runtime (`DFPOOL_THREADS`). Campaigns are
//! bit-reproducible from a `u64` seed, including injected faults and
//! retries. With `DFTRACE=1` the scheduler and jobs report `hts.campaign`
//! / `hts.job` spans, `hts.job_us` / `hts.rank_us` /
//! `hts.allgather_wait_us` latency histograms and the `hts.rank_skew`
//! straggler gauge; see `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod active;
pub mod allgather;
pub mod checkpoint;
pub mod cluster;
pub mod enrichment;
pub mod fault;
pub mod h5lite;
pub mod job;
pub mod prefilter;
pub mod scheduler;
pub mod scorer;
pub mod simulate;
pub mod throughput;

pub use active::{
    ranking_digest, run_active_campaign, run_active_campaign_aborting, AbortPoint,
    ActiveCampaignReport, ActiveLearningConfig, EpochReport,
};
pub use allgather::Communicator;
pub use checkpoint::{
    load_manifest, reconstruct_output, CheckpointError, CheckpointWriter, EpochState, JobSummary,
    LoadedManifest, ManifestEntry,
};
pub use cluster::{ClusterSpec, GpuMemoryModel, NodeSpec, RankSpec};
pub use enrichment::{enrichment_factor, recovery_auc, recovery_curve, FunnelReport, ScreenItem};
pub use fault::{FaultConfig, FaultEvent, FaultInjector};
pub use h5lite::{read_dir, read_file, H5Error, H5Writer, ScoreRecord};
pub use job::{
    run_job, DockingPoseSource, JobConfig, JobError, JobOutput, JobSpec, JobTiming, PoseSource,
    SyntheticPoseSource, TaskClass,
};
pub use prefilter::{
    coalesce_ranges, run_prefilter, run_prefilter_with, PrefilterConfig, PrefilterOutcome,
};
pub use scheduler::{
    resume_campaign, retry_backoff, run_campaign, run_campaign_with, CampaignReport, LaneStats,
    SchedulerConfig,
};
pub use scorer::{
    FusionScorer, FusionScorerFactory, MmGbsaScorer, MmGbsaScorerFactory, Scorer, ScorerFactory,
    VinaScorer, VinaScorerFactory,
};
pub use simulate::{simulate_campaign, AllotmentWindow, CampaignSim, CampaignSimReport};
pub use throughput::{LassenModel, SpeedupReport, Table7Row};
