//! Fusion evaluation jobs: the unit of screening work (Figure 3).
//!
//! The paper formulates evaluation as "many, individual 4-node processes,
//! each assigned to evaluate an independent set of 2 million poses". Here
//! a job is a set of `nodes × ranks_per_node` rank threads. Each rank:
//!
//! 1. takes the compound subset with its index (round-robin split),
//! 2. materializes poses (docking output, or a synthetic source for
//!    throughput experiments) and scores them in batches,
//! 3. allgathers every rank's predictions,
//! 4. writes its assigned share of the gathered records into its own
//!    `h5lite` file in parallel, via the atomic staging protocol
//!    (`*.tmp` + `sync_all` + rename) — a killed job can never leave a
//!    readable partial `.dfh5` behind.
//!
//! Faults (bad metadata / broken pipe / node failure) are injected per the
//! job's [`FaultConfig`]; node failure aborts the job so the scheduler can
//! re-queue it — the paper's design makes that cheap by keeping jobs small.
//! A broken pipe makes the rank's first write *actually fail* partway
//! through the chunk; the write is then re-issued from scratch and counted
//! in [`JobOutput::write_retries`] (and the `hts.write_retries` counter).

use crate::allgather::Communicator;
use crate::fault::{FaultConfig, FaultEvent, FaultInjector};
use crate::h5lite::{H5Error, H5Writer, ScoreRecord};
use crate::scorer::ScorerFactory;
use dfchem::genmol::{Compound, Library};
use dfchem::geom::{Rotation, Vec3};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dftensor::rng::{derive_seed, normal_with, rng, uniform};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Produces the poses a job evaluates for one compound.
pub trait PoseSource: Sync {
    /// Poses for one compound in one pocket under a derived seed.
    fn poses(&self, compound: &Compound, pocket: &BindingPocket, seed: u64) -> Vec<Molecule>;
}

/// Real docking poses via the ConveyorLC-style search (what the campaign
/// uses).
pub struct DockingPoseSource(pub DockConfig);

impl PoseSource for DockingPoseSource {
    fn poses(&self, compound: &Compound, pocket: &BindingPocket, seed: u64) -> Vec<Molecule> {
        dock(&self.0, &compound.mol, pocket, seed).into_iter().map(|p| p.ligand).collect()
    }
}

/// Cheap synthetic poses (random rigid placements) for throughput and
/// fault-tolerance experiments where docking cost would dominate.
pub struct SyntheticPoseSource {
    /// Rigid placements generated per compound.
    pub poses_per_compound: usize,
}

impl PoseSource for SyntheticPoseSource {
    fn poses(&self, compound: &Compound, pocket: &BindingPocket, seed: u64) -> Vec<Molecule> {
        let mut r = rng(seed);
        (0..self.poses_per_compound)
            .map(|_| {
                let mut m = compound.mol.clone();
                let c = m.centroid();
                m.translate(c.scale(-1.0));
                m.rotate_about_centroid(&Rotation::about_axis(
                    Vec3::new(
                        normal_with(&mut r, 0.0, 1.0),
                        normal_with(&mut r, 0.0, 1.0),
                        normal_with(&mut r, 0.0, 1.0),
                    ),
                    uniform(&mut r, 0.0, std::f64::consts::TAU),
                ));
                m.translate(Vec3::new(
                    normal_with(&mut r, 0.0, pocket.radius * 0.3),
                    normal_with(&mut r, 0.0, pocket.radius * 0.3),
                    normal_with(&mut r, 0.0, pocket.radius * 0.3),
                ));
                m
            })
            .collect()
    }
}

/// Static job-shape configuration (the paper's values in comments).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobConfig {
    /// Nodes per job (paper: 4).
    pub nodes: usize,
    /// Ranks (GPUs) per node (paper: 4 → 16 ranks/job).
    pub ranks_per_node: usize,
    /// Poses loaded per inference batch (paper: 56).
    pub batch_size: usize,
    /// Output directory for the rank files.
    pub output_dir: PathBuf,
    /// Fault-injection probabilities for this job.
    pub faults: FaultConfig,
}

impl JobConfig {
    /// Total ranks across the job's nodes.
    pub fn num_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }
}

/// Funnel stage a job belongs to — the task classes of a heterogeneous
/// screening campaign (filter → surrogate → dock → rescore).
///
/// The paper's production campaigns interleave work whose per-compound
/// cost spans two orders of magnitude; the class tells the scheduler how
/// to lane, bundle and prioritize a job (see
/// [`crate::scheduler::SchedulerConfig`]) and scales a job's exposure to
/// node failures (longer attempts sit on more node-hours). `Dock` is the
/// default, so pre-class campaigns — and pre-class checkpoint manifests,
/// whose specs lack a class tag entirely — behave exactly as before (the
/// manual `Deserialize` impl decodes a missing/null class as `Dock`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Ligand-only triage (drug-likeness rules + fingerprint scoring).
    Filter,
    /// Cheap learned docking-surrogate scoring.
    Surrogate,
    /// Full pose generation + scoring (the most expensive class).
    #[default]
    Dock,
    /// Physics / fusion rescoring of already-docked poses.
    Rescore,
}

impl TaskClass {
    /// Every class, in lane order (the scheduler indexes lanes by this).
    pub const ALL: [TaskClass; 4] =
        [TaskClass::Filter, TaskClass::Surrogate, TaskClass::Dock, TaskClass::Rescore];

    /// Lane index of this class in [`TaskClass::ALL`].
    pub fn lane(self) -> usize {
        match self {
            TaskClass::Filter => 0,
            TaskClass::Surrogate => 1,
            TaskClass::Dock => 2,
            TaskClass::Rescore => 3,
        }
    }

    /// Short lowercase name for reports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Filter => "filter",
            TaskClass::Surrogate => "surrogate",
            TaskClass::Dock => "dock",
            TaskClass::Rescore => "rescore",
        }
    }

    /// Relative per-compound cost of this class (filter = 1). Drives the
    /// short-task bundling decision: a job's estimated cost is
    /// `num_compounds × cost_weight`.
    ///
    /// Surrogate was initially guessed at 6.0, which priced a 32-compound
    /// surrogate job at 192 — past the default bundle cap of 64, so
    /// surrogate jobs never bundled and each paid a full dispatch.
    /// Measured against the rule filter (`surrogate_bench` reports both
    /// per-compound costs), a batched fingerprint-MLP evaluation runs
    /// ~2x a rule-filter pass, not 6x: featurization dominates both and
    /// the MLP forward amortizes over the batch. At 2.0 a 32-compound
    /// surrogate job costs 64 and rides in bundles again.
    pub fn cost_weight(self) -> f64 {
        match self {
            TaskClass::Filter => 1.0,
            TaskClass::Surrogate => 2.0,
            TaskClass::Dock => 96.0,
            TaskClass::Rescore => 24.0,
        }
    }

    /// Dispatch share of this class's queue lane under the scheduler's
    /// weighted (stride) lane priority. Dock gets the largest share — it
    /// is the funnel's long pole — without ever starving the short lanes.
    pub fn dispatch_weight(self) -> u64 {
        match self {
            TaskClass::Filter => 1,
            TaskClass::Surrogate => 2,
            TaskClass::Dock => 8,
            TaskClass::Rescore => 4,
        }
    }

    /// Node-failure exposure scale: longer-running classes occupy more
    /// node-hours per attempt, so they see proportionally more node
    /// deaths. `Dock` is 1.0 — exactly the pre-class failure rate — so
    /// homogeneous campaigns reproduce their historical fault draws bit
    /// for bit.
    pub fn failure_exposure(self) -> f64 {
        match self {
            TaskClass::Filter => 0.25,
            TaskClass::Surrogate => 0.5,
            TaskClass::Dock => 1.0,
            TaskClass::Rescore => 0.5,
        }
    }

    /// Per-class `hts.sched.lane.<class>.dispatched` counter name.
    pub(crate) fn dispatched_counter(self) -> &'static str {
        match self {
            TaskClass::Filter => "hts.sched.lane.filter.dispatched",
            TaskClass::Surrogate => "hts.sched.lane.surrogate.dispatched",
            TaskClass::Dock => "hts.sched.lane.dock.dispatched",
            TaskClass::Rescore => "hts.sched.lane.rescore.dispatched",
        }
    }

    /// Per-class `hts.sched.lane.<class>.peak_occupancy` gauge name.
    pub(crate) fn occupancy_gauge(self) -> &'static str {
        match self {
            TaskClass::Filter => "hts.sched.lane.filter.peak_occupancy",
            TaskClass::Surrogate => "hts.sched.lane.surrogate.peak_occupancy",
            TaskClass::Dock => "hts.sched.lane.dock.peak_occupancy",
            TaskClass::Rescore => "hts.sched.lane.rescore.peak_occupancy",
        }
    }
}

impl serde::Serialize for TaskClass {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Str(self.name().to_string())
    }
}

/// Manual impl rather than derived: a checkpoint manifest written before
/// task classes existed has no `class` key at all, which surfaces here as
/// `Null` — and must decode as [`TaskClass::Dock`], the only class those
/// campaigns ran, so old manifests resume bit-identically.
impl serde::Deserialize for TaskClass {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::value::Value::Null => Ok(TaskClass::Dock),
            serde::value::Value::Str(s) => match s.as_str() {
                "filter" | "Filter" => Ok(TaskClass::Filter),
                "surrogate" | "Surrogate" => Ok(TaskClass::Surrogate),
                "dock" | "Dock" => Ok(TaskClass::Dock),
                "rescore" | "Rescore" => Ok(TaskClass::Rescore),
                other => Err(serde::DeError(format!("unknown TaskClass variant {other:?}"))),
            },
            other => Err(serde::DeError::expected("task class string", other.kind())),
        }
    }
}

/// One job's work assignment: a contiguous compound range on one target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Campaign-unique job id.
    pub job_id: u64,
    /// Target pocket.
    pub target: TargetSite,
    /// Compound library.
    pub library: Library,
    /// First compound index of the contiguous range.
    pub first_compound: u64,
    /// Number of compounds in the range.
    pub num_compounds: u64,
    /// Campaign seed (compounds and pockets materialize under it).
    pub campaign_seed: u64,
    /// Task class of this job (defaults to [`TaskClass::Dock`], which
    /// keeps pre-class specs and checkpoint manifests bit-compatible).
    pub class: TaskClass,
    /// Retry attempt (0 = first run); changes fault outcomes.
    pub attempt: u32,
}

impl JobSpec {
    /// Estimated relative cost of the job: compounds × the class's
    /// per-compound cost weight. The scheduler bundles jobs below
    /// [`crate::scheduler::SchedulerConfig::bundle_cost_cap`] into shared
    /// dispatches.
    pub fn est_cost(&self) -> f64 {
        self.num_compounds as f64 * self.class.cost_weight()
    }
}

/// Job failure modes surfaced to the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A node died during the attempt; the scheduler may retry.
    NodeFailure {
        /// The failed job.
        job_id: u64,
        /// The node that died.
        node: usize,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::NodeFailure { job_id, node } => {
                write!(f, "job {job_id}: node {node} failed")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Wall-clock phase breakdown, mirroring Table 7's rows.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JobTiming {
    /// Featurization/setup phase.
    pub startup: Duration,
    /// Pose-evaluation phase.
    pub evaluate: Duration,
    /// Result-writing phase.
    pub output: Duration,
    /// Poses scored during evaluation.
    pub poses_evaluated: usize,
}

impl JobTiming {
    /// Measured poses/second over the full job lifetime (via the shared
    /// [`dftrace::rate`] implementation).
    pub fn poses_per_sec(&self) -> f64 {
        let total = (self.startup + self.evaluate + self.output).as_secs_f64();
        dftrace::rate::per_sec(self.poses_evaluated as f64, total)
    }

    /// Measured poses/second during the evaluation phase only.
    pub fn eval_poses_per_sec(&self) -> f64 {
        dftrace::rate::per_sec(self.poses_evaluated as f64, self.evaluate.as_secs_f64())
    }
}

/// A completed job.
#[derive(Debug)]
pub struct JobOutput {
    /// Echo of the job id.
    pub job_id: u64,
    /// Every score produced, in compound order.
    pub records: Vec<ScoreRecord>,
    /// Rank files written.
    pub files: Vec<PathBuf>,
    /// Faults injected/observed during the run.
    pub faults: Vec<FaultEvent>,
    /// Rank-file writes that genuinely failed on their first attempt (a
    /// broken pipe) and were re-issued from scratch.
    pub write_retries: usize,
    /// Phase timing breakdown.
    pub timing: JobTiming,
}

/// Writes one rank's records to `path` via the atomic staging protocol
/// (`*.tmp` + `sync_all` + rename). With `fail_midway` the attempt
/// behaves like a real broken pipe: part of the chunk reaches the staging
/// file, then the write errors out — the partial bytes stay hidden behind
/// the `.tmp` name and the caller must re-issue the whole write.
fn write_rank_file(
    path: &PathBuf,
    records: &[ScoreRecord],
    fail_midway: bool,
) -> Result<PathBuf, H5Error> {
    let mut w = H5Writer::create_atomic(path)?;
    if fail_midway {
        // The pipe breaks mid-chunk: half the records are on disk in the
        // staging file, the rest are lost with the connection. The writer
        // is dropped un-finished, exactly like a killed process — the
        // retry's own staging write truncates these bytes.
        w.write_chunk("predictions", &records[..records.len() / 2])?;
        drop(w);
        return Err(H5Error::Io(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected broken pipe",
        )));
    }
    w.write_chunk("predictions", records)?;
    w.finish()
}

/// Runs one evaluation job to completion (or node failure).
pub fn run_job(
    cfg: &JobConfig,
    spec: &JobSpec,
    scorer_factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
) -> Result<JobOutput, JobError> {
    let _job_span = dftrace::span("hts.job");
    let start = Instant::now();
    let injector = FaultInjector::new(cfg.faults);
    let num_ranks = cfg.num_ranks();
    // Per-rank wall times for straggler-skew accounting; only collected
    // when tracing is on (write-only telemetry, never read back).
    let rank_times: Mutex<Vec<f64>> = Mutex::new(Vec::new());

    // Startup phase: receptor preparation happens once per job.
    let pocket = BindingPocket::generate(spec.target, spec.campaign_seed);
    let startup = start.elapsed();

    // Pre-declared node failures for this attempt (a dead node kills the
    // whole MPI job). Exposure scales with the task class: a dock attempt
    // holds its nodes ~100x longer than a filter attempt, so it sees
    // proportionally more node deaths.
    for node in 0..cfg.nodes {
        if injector.node_fails_scaled(
            spec.job_id,
            spec.attempt,
            node,
            spec.class.failure_exposure(),
        ) {
            return Err(JobError::NodeFailure { job_id: spec.job_id, node });
        }
    }

    let eval_start = Instant::now();
    let comm: Arc<Communicator<ScoreRecord>> = Communicator::new(num_ranks);
    let faults: Mutex<Vec<FaultEvent>> = Mutex::new(Vec::new());
    let write_retries = std::sync::atomic::AtomicUsize::new(0);
    // Per-rank result slot: (gathered records, output file path — `None`
    // when the rank's partition was empty and no file was written).
    type RankOutput = Mutex<Option<(Vec<ScoreRecord>, Option<PathBuf>)>>;
    let rank_outputs: Vec<RankOutput> = (0..num_ranks).map(|_| Mutex::new(None)).collect();
    // The rank threads are plain OS threads; capture the caller's pool so
    // batch scoring inside each rank fans out on it (and tests that install
    // a serial pool stay serial end-to-end).
    let pool = dfpool::current();

    crossbeam::scope(|s| {
        for rank in 0..num_ranks {
            let comm = Arc::clone(&comm);
            let pocket = &pocket;
            let faults = &faults;
            let rank_outputs = &rank_outputs;
            let pool = pool.clone();
            let rank_times = &rank_times;
            let write_retries = &write_retries;
            s.spawn(move |_| {
                let rank_start = Instant::now();
                let records = pool.install(|| {
                    rank_records(cfg, spec, scorer_factory, source, &injector, faults, pocket, rank)
                });

                // Gather everyone's predictions.
                let all = comm.allgather(rank, records);

                // Parallel output: this rank writes the records whose
                // compound index hashes to it. The modulus is taken in
                // u64 — `index as usize % num_ranks` truncated on 32-bit
                // targets, silently re-partitioning indices above 2^32.
                let mine: Vec<ScoreRecord> = all
                    .iter()
                    .filter(|r| r.compound.index % num_ranks as u64 == rank as u64)
                    .copied()
                    .collect();
                // A short (e.g. prefiltered) run can leave a rank with
                // zero records; skip the file instead of writing an empty
                // `.dfh5` — resume reads only the files the summary
                // lists, so the restored output stays bit-identical.
                let path = if mine.is_empty() {
                    dftrace::counter_add("hts.empty_rank_files_skipped", 1);
                    None
                } else {
                    let path =
                        cfg.output_dir.join(format!("job{:05}_rank{:02}.dfh5", spec.job_id, rank));
                    let fail_first = injector.broken_pipe(spec.job_id, spec.attempt, rank);
                    Some(match write_rank_file(&path, &mine, fail_first) {
                        Ok(p) => p,
                        Err(_broken_pipe) => {
                            // The first write really failed; log it and
                            // re-issue the whole write from scratch.
                            faults.lock().push(FaultEvent::BrokenPipe { rank, retried: true });
                            write_retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            dftrace::counter_add("hts.write_retries", 1);
                            write_rank_file(&path, &mine, false).expect("re-issued rank output")
                        }
                    })
                };
                *rank_outputs[rank].lock() = Some((all, path));
                if dftrace::enabled() {
                    let elapsed = rank_start.elapsed();
                    dftrace::observe_duration("hts.rank_us", elapsed);
                    rank_times.lock().push(elapsed.as_secs_f64());
                }
            });
        }
    })
    .expect("job rank panicked");

    let evaluate = eval_start.elapsed();
    let out_start = Instant::now();
    let mut files = Vec::with_capacity(num_ranks);
    let mut records = Vec::new();
    for (rank, slot) in rank_outputs.iter().enumerate() {
        let (gathered, path) = slot.lock().take().expect("rank finished");
        if rank == 0 {
            // Every rank holds the same gathered view; keep rank 0's.
            records = gathered;
        }
        if let Some(path) = path {
            files.push(path);
        }
    }
    let output = out_start.elapsed();

    let poses_evaluated = records.len();
    dftrace::counter_add("hts.poses", poses_evaluated as u64);
    if dftrace::enabled() {
        // Straggler skew: slowest rank over mean rank time (1.0 = perfectly
        // balanced). Gauge holds the most recent job's value; the full
        // distribution is in the hts.rank_us histogram.
        let times = rank_times.lock();
        let mean = dftrace::rate::mean(times.iter().sum::<f64>(), times.len() as f64);
        if mean > 0.0 {
            let max = times.iter().cloned().fold(0.0f64, f64::max);
            dftrace::gauge_set("hts.rank_skew", max / mean);
        }
    }
    // Rank threads log faults in completion order, which races. Canonical
    // order keeps the job output (and thus a resumed campaign's restored
    // fault log) bit-identical across runs.
    let mut fault_log = faults.into_inner();
    fault_log.sort_by_key(|f| match f {
        FaultEvent::BadMetadata { compound_index } => (0u8, *compound_index, 0u64),
        FaultEvent::BrokenPipe { rank, retried } => (1, *rank as u64, u64::from(*retried)),
        FaultEvent::NodeFailure { node } => (2, *node as u64, 0),
    });
    Ok(JobOutput {
        job_id: spec.job_id,
        records,
        files,
        faults: fault_log,
        write_retries: write_retries.into_inner(),
        timing: JobTiming { startup, evaluate, output, poses_evaluated },
    })
}

/// Scores one rank's round-robin compound share on the installed pool.
///
/// Compounds are independent (each builds its own poses from a derived
/// seed and per-rank scorers are interchangeable — see
/// `per_rank_scorers_are_independent_but_identical`), so they fan out with
/// `parallel_map` and the per-compound record vectors are flattened **in
/// compound order**: the result is bit-identical to the serial loop at any
/// thread count.
#[allow(clippy::too_many_arguments)]
fn rank_records(
    cfg: &JobConfig,
    spec: &JobSpec,
    scorer_factory: &dyn ScorerFactory,
    source: &dyn PoseSource,
    injector: &FaultInjector,
    faults: &Mutex<Vec<FaultEvent>>,
    pocket: &BindingPocket,
    rank: usize,
) -> Vec<ScoreRecord> {
    let num_ranks = cfg.num_ranks();
    let indices: Vec<u64> = (spec.first_compound..spec.first_compound + spec.num_compounds)
        .skip(rank)
        .step_by(num_ranks.max(1))
        .collect();
    dfpool::current()
        .parallel_map(indices.len(), 1, |k| {
            let ci = indices[k];
            if injector.bad_metadata(spec.job_id, ci) {
                faults.lock().push(FaultEvent::BadMetadata { compound_index: ci });
                return Vec::new();
            }
            let compound = Compound::materialize(spec.library, ci, spec.campaign_seed);
            let pose_seed = derive_seed(spec.campaign_seed, 0x9053 ^ ci);
            let poses = source.poses(&compound, pocket, pose_seed);
            let mut scorer = scorer_factory.build();
            let mut records = Vec::with_capacity(poses.len());
            let mut pose_rank = 0u16;
            for chunk in poses.chunks(cfg.batch_size.max(1)) {
                for score in scorer.score_poses(chunk, pocket) {
                    records.push(ScoreRecord {
                        compound: compound.id,
                        target: spec.target,
                        pose_rank,
                        score,
                    });
                    pose_rank += 1;
                }
            }
            records
        })
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h5lite::read_dir;
    use crate::scorer::VinaScorerFactory;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfjob_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg(dir: PathBuf, faults: FaultConfig) -> JobConfig {
        JobConfig { nodes: 2, ranks_per_node: 2, batch_size: 4, output_dir: dir, faults }
    }

    fn spec(job_id: u64, n: u64) -> JobSpec {
        JobSpec {
            job_id,
            target: TargetSite::Spike1,
            library: Library::EnamineVirtual,
            first_compound: 0,
            num_compounds: n,
            campaign_seed: 3,
            class: TaskClass::Dock,
            attempt: 0,
        }
    }

    #[test]
    fn job_scores_every_compound_pose() {
        let dir = tmpdir("basic");
        let out = run_job(
            &cfg(dir.clone(), FaultConfig::default()),
            &spec(1, 8),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 3 },
        )
        .unwrap();
        assert_eq!(out.records.len(), 8 * 3);
        assert_eq!(out.timing.poses_evaluated, 24);
        assert!(out.faults.is_empty());
        // Every compound appears with pose ranks 0..3.
        for ci in 0..8u64 {
            let ranks: Vec<u16> = out
                .records
                .iter()
                .filter(|r| r.compound.index == ci)
                .map(|r| r.pose_rank)
                .collect();
            assert_eq!(ranks.len(), 3, "compound {ci}");
            assert!(ranks.contains(&0) && ranks.contains(&2));
        }
        // Rank files jointly contain the same records.
        let on_disk = read_dir(&dir).unwrap();
        assert_eq!(on_disk.len(), out.records.len());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bad_metadata_skips_compounds_but_not_the_job() {
        let dir = tmpdir("badmeta");
        let faults = FaultConfig { p_bad_metadata: 0.3, seed: 7, ..Default::default() };
        let out = run_job(
            &cfg(dir.clone(), faults),
            &spec(2, 20),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        )
        .unwrap();
        let skipped =
            out.faults.iter().filter(|f| matches!(f, FaultEvent::BadMetadata { .. })).count();
        assert!(skipped > 0, "expected some bad-metadata skips");
        assert_eq!(out.records.len(), 20 - skipped);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn node_failure_aborts_the_job() {
        let dir = tmpdir("nodefail");
        let faults = FaultConfig { p_node_failure: 1.0, seed: 1, ..Default::default() };
        let err = run_job(
            &cfg(dir.clone(), faults),
            &spec(3, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, JobError::NodeFailure { job_id: 3, .. }));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn broken_pipe_is_retried_and_logged() {
        let dir = tmpdir("pipe");
        let faults = FaultConfig { p_broken_pipe: 1.0, seed: 5, ..Default::default() };
        let out = run_job(
            &cfg(dir.clone(), faults),
            &spec(4, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        )
        .unwrap();
        let pipes = out
            .faults
            .iter()
            .filter(|f| matches!(f, FaultEvent::BrokenPipe { retried: true, .. }))
            .count();
        assert_eq!(pipes, 4, "every rank retried its write");
        // Regression lock: the events must reflect *real* re-issued
        // writes, not log-only bookkeeping — reverting the fix (logging
        // the event without failing the first write) leaves this at 0.
        assert_eq!(out.write_retries, 4, "each logged pipe is a real second write");
        // Retries succeeded: all records on disk, no staging litter.
        assert_eq!(read_dir(&dir).unwrap().len(), out.records.len());
        let leftover_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(leftover_tmp, 0, "retry overwrote and renamed the staging file");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn clean_job_reports_no_write_retries() {
        let dir = tmpdir("noretry");
        let out = run_job(
            &cfg(dir.clone(), FaultConfig::default()),
            &spec(6, 4),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        )
        .unwrap();
        assert_eq!(out.write_retries, 0);
        assert!(out.faults.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    /// A short prefiltered run can leave ranks with zero records. Those
    /// ranks must not write empty `.dfh5` files (the old behaviour), and
    /// the on-disk view must still hold every record exactly once.
    #[test]
    fn empty_rank_partitions_skip_their_files() {
        let dir = tmpdir("emptyranks");
        // 8 ranks but only 2 compounds: 6 ranks have an empty partition.
        let mut c = cfg(dir.clone(), FaultConfig::default());
        c.nodes = 2;
        c.ranks_per_node = 4;
        let out = run_job(
            &c,
            &spec(9, 2),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 3 },
        )
        .unwrap();
        assert_eq!(out.records.len(), 2 * 3);
        assert_eq!(out.files.len(), 2, "only non-empty ranks write files");
        for f in &out.files {
            assert!(f.exists(), "listed file {} must exist", f.display());
        }
        let on_disk = read_dir(&dir).unwrap();
        assert_eq!(on_disk.len(), out.records.len(), "no record lost with skipped files");
        std::fs::remove_dir_all(dir).ok();
    }

    /// Compound indices above 2^32 used to truncate in the
    /// `index as usize % num_ranks` output partition on 32-bit targets.
    /// Pin the u64 math: a range past 2^32 still partitions every record
    /// to exactly one rank file.
    #[test]
    fn rank_partition_handles_indices_beyond_u32() {
        let dir = tmpdir("hugeidx");
        let mut s = spec(10, 6);
        s.first_compound = (1u64 << 33) + 5;
        let out = run_job(
            &cfg(dir.clone(), FaultConfig::default()),
            &s,
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 1 },
        )
        .unwrap();
        assert_eq!(out.records.len(), 6);
        for r in &out.records {
            assert!(r.compound.index >= s.first_compound);
        }
        let on_disk = read_dir(&dir).unwrap();
        assert_eq!(on_disk.len(), 6, "each huge-index record lands in exactly one rank file");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn task_class_defaults_keep_dock_campaigns_bit_compatible() {
        // Dock is the serde default, with failure exposure exactly 1.0 —
        // a pre-class spec deserializes into the same fault draws.
        assert_eq!(TaskClass::default(), TaskClass::Dock);
        assert_eq!(TaskClass::Dock.failure_exposure(), 1.0);
        let json = r#"{"job_id":3,"target":"Spike1","library":"EnamineVirtual",
            "first_compound":0,"num_compounds":8,"campaign_seed":3,"attempt":0}"#;
        let s: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(s.class, TaskClass::Dock);
        // Lane order and names are a stable contract for metric labels.
        for (i, c) in TaskClass::ALL.iter().enumerate() {
            assert_eq!(c.lane(), i);
        }
        assert_eq!(TaskClass::Filter.name(), "filter");
        // Cost ordering matches the funnel: filter < surrogate < rescore < dock.
        assert!(TaskClass::Filter.cost_weight() < TaskClass::Surrogate.cost_weight());
        assert!(TaskClass::Surrogate.cost_weight() < TaskClass::Rescore.cost_weight());
        assert!(TaskClass::Rescore.cost_weight() < TaskClass::Dock.cost_weight());
        let s2 = JobSpec { class: TaskClass::Filter, ..spec(1, 64) };
        assert_eq!(s2.est_cost(), 64.0);
    }

    #[test]
    fn results_are_deterministic_across_runs_and_rank_counts() {
        let d1 = tmpdir("det1");
        let d2 = tmpdir("det2");
        let a = run_job(
            &cfg(d1.clone(), FaultConfig::default()),
            &spec(5, 6),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
        )
        .unwrap();
        let mut one_rank = cfg(d2.clone(), FaultConfig::default());
        one_rank.nodes = 1;
        one_rank.ranks_per_node = 1;
        let b = run_job(
            &one_rank,
            &spec(5, 6),
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 2 },
        )
        .unwrap();
        let key = |r: &ScoreRecord| (r.compound.index, r.pose_rank);
        let mut ra = a.records.clone();
        let mut rb = b.records.clone();
        ra.sort_by_key(key);
        rb.sort_by_key(key);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(key(x), key(y));
            assert_eq!(x.score, y.score, "scores independent of rank layout");
        }
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }
}
