//! Fault-matrix durability sweep.
//!
//! Runs whole campaigns under `FaultConfig::noisy` across several seeds,
//! interrupting and resuming each one, and checks the crash-safety
//! invariants end to end:
//!
//! * a resumed campaign is bit-identical to an uninterrupted one;
//! * the output directory never contains a readable partial file or a
//!   leftover `*.tmp` staging file;
//! * resuming a finished campaign re-runs nothing;
//! * the manifest survives a torn tail appended by a "dying" driver.
//!
//! The sweep re-runs every campaign twice per seed, so it is gated behind
//! `DFHTS_FAULT_MATRIX=1` (CI sets it in the fault-matrix job; the plain
//! test suite skips it).

use dfchem::genmol::Library;
use dfchem::pocket::TargetSite;
use dfhts::checkpoint::summarize;
use dfhts::{
    read_dir, resume_campaign, run_active_campaign, run_active_campaign_aborting, run_campaign,
    run_job, AbortPoint, ActiveLearningConfig, CheckpointWriter, FaultConfig, JobConfig, JobSpec,
    ManifestEntry, SchedulerConfig, SyntheticPoseSource, TaskClass, VinaScorerFactory,
};
use std::path::PathBuf;

fn enabled() -> bool {
    std::env::var("DFHTS_FAULT_MATRIX").map(|v| v == "1").unwrap_or(false)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dffm_{tag}_{}", std::process::id()));
    if d.exists() {
        std::fs::remove_dir_all(&d).unwrap();
    }
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn specs(n: u64, per_job: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::Protease1,
            library: Library::EnamineVirtual,
            first_compound: j * per_job,
            num_compounds: per_job,
            campaign_seed: 77,
            class: TaskClass::Dock,
            attempt: 0,
        })
        .collect()
}

/// A funnel-shaped spec mix: classes cycle through [`TaskClass::ALL`],
/// targets round-robin, and job sizes vary so lanes drain at different
/// rates (filter jobs bundle under the default cost cap; dock jobs get
/// dedicated dispatches and full failure exposure).
fn mixed_specs(n: u64, per_job: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::ALL[(j % TargetSite::ALL.len() as u64) as usize],
            library: Library::EnamineVirtual,
            first_compound: j * (per_job + 2),
            num_compounds: per_job + j % 3,
            campaign_seed: 77,
            class: TaskClass::ALL[(j % TaskClass::ALL.len() as u64) as usize],
            attempt: 0,
        })
        .collect()
}

fn job_cfg(dir: PathBuf, faults: FaultConfig) -> JobConfig {
    JobConfig { nodes: 1, ranks_per_node: 4, batch_size: 8, output_dir: dir, faults }
}

fn assert_no_staging_leftovers(dir: &PathBuf) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        assert!(
            path.extension().map(|e| e != "tmp").unwrap_or(true),
            "leftover staging file {path:?}"
        );
    }
}

#[test]
fn noisy_campaigns_survive_crash_and_resume_across_seeds() {
    if !enabled() {
        eprintln!("skipping: set DFHTS_FAULT_MATRIX=1 to run the fault matrix");
        return;
    }
    let sched = SchedulerConfig { max_parallel_jobs: 3, max_attempts: 6, ..Default::default() };
    let source = SyntheticPoseSource { poses_per_compound: 2 };
    const JOBS: u64 = 5;
    const PER_JOB: u64 = 8;

    for seed in [1u64, 7, 23, 42] {
        let faults = FaultConfig::noisy(seed);

        // Uninterrupted reference campaign.
        let clean_dir = tmpdir(&format!("clean_{seed}"));
        let clean = run_campaign(
            &sched,
            &job_cfg(clean_dir.clone(), faults),
            specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
        );
        assert_eq!(clean.outputs.len() + clean.abandoned.len(), JOBS as usize, "seed {seed}");
        assert_no_staging_leftovers(&clean_dir);

        // "Crashed" campaign: the driver journals the first two jobs'
        // terminal events, then dies mid-append.
        let crash_dir = tmpdir(&format!("crash_{seed}"));
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        {
            let mut w = CheckpointWriter::create(&manifest).unwrap();
            for spec in specs(2, PER_JOB) {
                let mut spec = spec;
                let entry = loop {
                    match run_job(&crash_cfg, &spec, &VinaScorerFactory, &source) {
                        Ok(out) => {
                            break ManifestEntry::Completed { spec, summary: summarize(&out) }
                        }
                        Err(_) if spec.attempt + 1 < sched.max_attempts => spec.attempt += 1,
                        Err(_) => break ManifestEntry::Abandoned { spec },
                    }
                };
                w.append(&entry).unwrap();
            }
            drop(w);
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(b"driver died here").unwrap();
        }

        // Resume over the full spec list; only the un-journaled jobs run.
        let resumed = resume_campaign(
            &sched,
            &crash_cfg,
            specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_no_staging_leftovers(&crash_dir);

        // Bit-identical to the uninterrupted run.
        assert_eq!(clean.outputs.len(), resumed.outputs.len(), "seed {seed}");
        assert_eq!(clean.abandoned, resumed.abandoned, "seed {seed}");
        for (a, b) in clean.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.job_id, b.job_id, "seed {seed}");
            assert_eq!(a.records, b.records, "seed {seed} job {} records differ", a.job_id);
            assert_eq!(a.faults, b.faults, "seed {seed} job {} fault log differs", a.job_id);
        }
        let mut on_disk_clean = read_dir(&clean_dir).unwrap();
        let mut on_disk_crash = read_dir(&crash_dir).unwrap();
        let key = |r: &dfhts::ScoreRecord| (r.compound.index, r.pose_rank);
        on_disk_clean.sort_by_key(key);
        on_disk_crash.sort_by_key(key);
        assert_eq!(on_disk_clean, on_disk_crash, "seed {seed} on-disk records differ");

        // A second resume restores everything from the journal.
        let again = resume_campaign(
            &sched,
            &crash_cfg,
            specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(again.jobs_resumed, resumed.outputs.len() + resumed.abandoned.len());
        assert_eq!(again.failed_attempts, 0, "seed {seed}: nothing should re-run");
        for (a, b) in clean.outputs.iter().zip(&again.outputs) {
            assert_eq!(a.records, b.records, "seed {seed} second resume diverged");
        }

        for d in [&clean_dir, &crash_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}

/// The active-learning leg of the matrix: a surrogate-in-the-loop
/// campaign under noisy faults is killed at the narrowest recovery seam —
/// after an epoch's retrain, before its hot-swap and epoch journal entry —
/// and additionally suffers a torn tail appended by the dying driver. The
/// resumed campaign must re-dock nothing that was journaled, verify the
/// recomputed epochs against their journaled markers, and land a final
/// ranking digest bit-identical to an uninterrupted run.
#[test]
fn active_learning_campaigns_survive_mid_epoch_crash_across_seeds() {
    if !enabled() {
        eprintln!("skipping: set DFHTS_FAULT_MATRIX=1 to run the fault matrix");
        return;
    }
    let source = SyntheticPoseSource { poses_per_compound: 2 };
    for seed in [5u64, 31, 77] {
        let mut cfg = ActiveLearningConfig::tiny(Library::EnamineVirtual, 48, seed);
        cfg.train.epochs = 6;
        cfg.sched = SchedulerConfig { max_parallel_jobs: 3, max_attempts: 6, ..Default::default() };
        let faults = FaultConfig::noisy(seed);

        // Uninterrupted reference campaign.
        let clean_dir = tmpdir(&format!("al_clean_{seed}"));
        let clean = run_active_campaign(
            &cfg,
            &job_cfg(clean_dir.clone(), faults),
            &VinaScorerFactory,
            &source,
            clean_dir.join("campaign.dfcp"),
        )
        .unwrap();
        assert_no_staging_leftovers(&clean_dir);

        // Killed between epoch 1's retrain and its hot-swap, then the
        // dying driver tears the manifest tail.
        let crash_dir = tmpdir(&format!("al_crash_{seed}"));
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        let aborted = run_active_campaign_aborting(
            &cfg,
            &crash_cfg,
            &VinaScorerFactory,
            &source,
            &manifest,
            AbortPoint::BeforePublish { epoch: 1 },
        )
        .unwrap();
        assert!(aborted.is_none(), "seed {seed}: the injected kill must fire");
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(b"driver died here").unwrap();
        }

        let resumed =
            run_active_campaign(&cfg, &crash_cfg, &VinaScorerFactory, &source, &manifest).unwrap();
        assert_no_staging_leftovers(&crash_dir);

        assert_eq!(
            resumed.ranking_digest, clean.ranking_digest,
            "seed {seed}: resumed ranking digest diverged"
        );
        assert_eq!(resumed.ranking, clean.ranking, "seed {seed}");
        assert_eq!(resumed.docked, clean.docked, "seed {seed}");
        assert_eq!(
            resumed.epochs.iter().map(|e| e.snapshot_hash).collect::<Vec<_>>(),
            clean.epochs.iter().map(|e| e.snapshot_hash).collect::<Vec<_>>(),
            "seed {seed}: per-epoch weights diverged"
        );
        assert!(
            resumed.epochs[0].verified_against_journal,
            "seed {seed}: epoch 0 must verify against its journaled marker"
        );
        assert!(
            resumed.epochs.iter().any(|e| e.dock_jobs_resumed > 0),
            "seed {seed}: journaled dock jobs must restore instead of re-running"
        );

        for d in [&clean_dir, &crash_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}

/// The heterogeneous leg of the matrix: a multi-class campaign — class
/// lanes, bundled filter jobs, bounded lane occupancy, class-scaled
/// failure exposure — is killed mid-run and must resume bit-identically
/// through the same checkpoint machinery as the dock-only sweep.
#[test]
fn heterogeneous_campaigns_survive_crash_and_resume_across_seeds() {
    if !enabled() {
        eprintln!("skipping: set DFHTS_FAULT_MATRIX=1 to run the fault matrix");
        return;
    }
    let sched = SchedulerConfig {
        max_parallel_jobs: 3,
        max_attempts: 6,
        lane_capacity: 2,
        ..Default::default()
    };
    let source = SyntheticPoseSource { poses_per_compound: 2 };
    const JOBS: u64 = 12;
    const PER_JOB: u64 = 6;

    for seed in [3u64, 19, 58] {
        let faults = FaultConfig::noisy(seed);

        // Uninterrupted reference campaign over the mixed spec set.
        let clean_dir = tmpdir(&format!("het_clean_{seed}"));
        let clean = run_campaign(
            &sched,
            &job_cfg(clean_dir.clone(), faults),
            mixed_specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
        );
        assert_eq!(clean.outputs.len() + clean.abandoned.len(), JOBS as usize, "seed {seed}");
        // Every class lane must have carried work.
        for lane in &clean.lanes {
            assert!(
                lane.jobs_dispatched > 0,
                "seed {seed}: class {:?} never dispatched",
                lane.class
            );
            assert!(
                lane.peak_occupancy <= sched.lane_capacity + sched.max_attempts as usize,
                "seed {seed}: class {:?} occupancy {} breaks the backpressure bound",
                lane.class,
                lane.peak_occupancy
            );
        }
        assert_no_staging_leftovers(&clean_dir);

        // The driver journals the first four jobs' terminal events (one
        // per class), then dies mid-append.
        let crash_dir = tmpdir(&format!("het_crash_{seed}"));
        let crash_cfg = job_cfg(crash_dir.clone(), faults);
        let manifest = crash_dir.join("campaign.dfcp");
        {
            let mut w = CheckpointWriter::create(&manifest).unwrap();
            for spec in mixed_specs(4, PER_JOB) {
                let mut spec = spec;
                let entry = loop {
                    match run_job(&crash_cfg, &spec, &VinaScorerFactory, &source) {
                        Ok(out) => {
                            break ManifestEntry::Completed { spec, summary: summarize(&out) }
                        }
                        Err(_) if spec.attempt + 1 < sched.max_attempts => spec.attempt += 1,
                        Err(_) => break ManifestEntry::Abandoned { spec },
                    }
                };
                w.append(&entry).unwrap();
            }
            drop(w);
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&manifest).unwrap();
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(b"driver died here").unwrap();
        }

        let resumed = resume_campaign(
            &sched,
            &crash_cfg,
            mixed_specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_no_staging_leftovers(&crash_dir);

        // Bit-identical to the uninterrupted run, class tags included.
        assert_eq!(clean.outputs.len(), resumed.outputs.len(), "seed {seed}");
        assert_eq!(clean.abandoned, resumed.abandoned, "seed {seed}");
        for (a, b) in clean.outputs.iter().zip(&resumed.outputs) {
            assert_eq!(a.job_id, b.job_id, "seed {seed}");
            assert_eq!(a.records, b.records, "seed {seed} job {} records differ", a.job_id);
            assert_eq!(a.faults, b.faults, "seed {seed} job {} fault log differs", a.job_id);
        }
        let mut on_disk_clean = read_dir(&clean_dir).unwrap();
        let mut on_disk_crash = read_dir(&crash_dir).unwrap();
        let key = |r: &dfhts::ScoreRecord| (r.compound.index, r.pose_rank);
        on_disk_clean.sort_by_key(key);
        on_disk_crash.sort_by_key(key);
        assert_eq!(on_disk_clean, on_disk_crash, "seed {seed} on-disk records differ");

        // A second resume restores all twelve jobs from the journal and
        // re-runs nothing — the class tags round-tripped through the
        // manifest.
        let again = resume_campaign(
            &sched,
            &crash_cfg,
            mixed_specs(JOBS, PER_JOB),
            &VinaScorerFactory,
            &source,
            &manifest,
        )
        .unwrap();
        assert_eq!(again.jobs_resumed, resumed.outputs.len() + resumed.abandoned.len());
        assert_eq!(again.failed_attempts, 0, "seed {seed}: nothing should re-run");
        for (a, b) in clean.outputs.iter().zip(&again.outputs) {
            assert_eq!(a.records, b.records, "seed {seed} second resume diverged");
        }

        for d in [&clean_dir, &crash_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
