//! Property tests for the prefilter→dock seam.
//!
//! [`PrefilterOutcome::selection_ranges`] bridges the ranked shortlist to
//! contiguous job ranges, so the whole campaign's correctness rests on
//! its cover properties: every selected compound lands in exactly one
//! range, ranges never overlap or leave the selection, and the
//! `max_compounds_per_job` cap splits dense runs into balanced pieces
//! instead of a mega-job plus stragglers. The unit tests pin handpicked
//! shapes; these tests sweep arbitrary shortlists.

use dfchem::screen::{FunnelStats, RankedCompound};
use dfchem::RejectionTally;
use dfhts::{PrefilterOutcome, TaskClass};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn outcome(indices: &BTreeSet<u64>) -> PrefilterOutcome {
    PrefilterOutcome {
        funnel: FunnelStats::default(),
        tally: RejectionTally { evaluated: 0, passed: 0, rejected: 0, per_rule: Vec::new() },
        shortlist: indices.iter().map(|&index| RankedCompound { index, score: -1.0 }).collect(),
    }
}

/// The maximal contiguous runs of a sorted index set (the uncapped
/// ground truth, recomputed independently of the implementation).
fn runs(indices: &BTreeSet<u64>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &i in indices {
        match out.last_mut() {
            Some((first, len)) if *first + *len == i => *len += 1,
            _ => out.push((i, 1)),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Capped or not, the ranges are ascending, disjoint, within the cap,
    /// and cover every selected index exactly once without spilling onto
    /// unselected ones.
    #[test]
    fn ranges_exactly_cover_the_selection(
        raw in proptest::collection::vec(0u64..2_000, 0..250),
        cap in 0u64..=40,
    ) {
        let indices: BTreeSet<u64> = raw.into_iter().collect();
        let ranges = outcome(&indices).selection_ranges(cap);

        let mut covered = BTreeSet::new();
        let mut prev_end: Option<u64> = None;
        for &(first, len) in &ranges {
            prop_assert!(len > 0, "empty range ({first}, {len})");
            if cap > 0 {
                prop_assert!(len <= cap, "range ({first}, {len}) exceeds cap {cap}");
            }
            if let Some(end) = prev_end {
                prop_assert!(first >= end, "range ({first}, {len}) overlaps or regresses");
            }
            prev_end = Some(first + len);
            for i in first..first + len {
                prop_assert!(indices.contains(&i), "range covers unselected index {i}");
                prop_assert!(covered.insert(i), "index {i} covered twice");
            }
        }
        prop_assert_eq!(covered, indices);
    }

    /// Uncapped ranges are exactly the maximal runs (adjacent selections
    /// merge; gaps split), and capping only ever subdivides those runs
    /// into balanced, length-preserving pieces: `ceil(len/cap)` pieces
    /// whose lengths differ by at most one.
    #[test]
    fn capping_subdivides_maximal_runs_into_balanced_pieces(
        raw in proptest::collection::vec(0u64..500, 0..250),
        cap in 1u64..=17,
    ) {
        let indices: BTreeSet<u64> = raw.into_iter().collect();
        let out = outcome(&indices);
        prop_assert_eq!(out.selection_ranges(0), runs(&indices));

        let capped = out.selection_ranges(cap);
        let mut pieces = capped.iter().copied().peekable();
        for (first, len) in runs(&indices) {
            let want_pieces = len.div_ceil(cap);
            let (mut lo, mut hi, mut got, mut off) = (u64::MAX, 0u64, 0u64, 0u64);
            while let Some(&(pf, pl)) = pieces.peek() {
                if pf != first + off || off >= len {
                    break;
                }
                prop_assert!(off + pl <= len, "piece ({pf}, {pl}) spills past its run");
                lo = lo.min(pl);
                hi = hi.max(pl);
                got += 1;
                off += pl;
                pieces.next();
            }
            prop_assert_eq!(off, len, "run ({first}, {len}) not length-preserved");
            prop_assert_eq!(got, want_pieces, "run ({first}, {len}) at cap {cap}");
            prop_assert!(hi - lo <= 1, "unbalanced pieces {lo}..{hi} for run ({first}, {len})");
        }
        prop_assert!(pieces.next().is_none(), "leftover pieces beyond the runs");
    }

    /// `job_specs` inherits the cover: specs tile the capped ranges in
    /// order, dock-class, round-robin over targets, sequential ids.
    #[test]
    fn job_specs_tile_the_ranges(
        raw in proptest::collection::vec(0u64..1_000, 1..200),
        cap in 1u64..=32,
        first_id in 0u64..1_000,
    ) {
        use dfchem::genmol::Library;
        use dfchem::pocket::TargetSite;
        let indices: BTreeSet<u64> = raw.into_iter().collect();
        let out = outcome(&indices);
        let ranges = out.selection_ranges(cap);
        let specs = out.job_specs(&TargetSite::ALL, Library::Chembl, 7, first_id, cap);
        prop_assert_eq!(specs.len(), ranges.len());
        for (i, (spec, &(first, len))) in specs.iter().zip(&ranges).enumerate() {
            prop_assert_eq!(spec.job_id, first_id + i as u64);
            prop_assert_eq!(spec.first_compound, first);
            prop_assert_eq!(spec.num_compounds, len);
            prop_assert_eq!(spec.class, TaskClass::Dock);
            prop_assert_eq!(spec.target, TargetSite::ALL[i % TargetSite::ALL.len()]);
            prop_assert_eq!(spec.attempt, 0);
        }
        let total: u64 = specs.iter().map(|s| s.num_compounds).sum();
        prop_assert_eq!(total, indices.len() as u64);
    }
}
