//! Concurrency stress tests for [`dfhts::allgather::Communicator`].
//!
//! The communicator is the job runner's only cross-rank synchronization
//! point, so these tests hammer it the way a 16-rank job would: many ranks,
//! many reused rounds, deliberately skewed arrival times. Every test runs
//! under a watchdog thread so a lost-wakeup or generation-counting bug
//! shows up as a clean failure instead of a hung test binary.

use dfhts::allgather::Communicator;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Runs `f` on its own thread and fails the test if it does not finish
/// within `secs` seconds (deadlock watchdog).
fn with_watchdog<F>(secs: u64, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("stress body panicked"),
        Err(_) => panic!("allgather stress deadlocked (no progress in {secs}s)"),
    }
}

/// Pseudo-random but deterministic per-(rank, round) delay in [0, max_us).
fn jitter_us(rank: usize, round: u64, max_us: u64) -> u64 {
    let mut h = rank as u64 ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h % max_us.max(1)
}

#[test]
fn many_ranks_many_rounds_with_skewed_arrivals() {
    const RANKS: usize = 16;
    const ROUNDS: u64 = 50;
    with_watchdog(60, || {
        let comm: Arc<Communicator<u64>> = Communicator::new(RANKS);
        crossbeam::scope(|s| {
            for rank in 0..RANKS {
                let comm = Arc::clone(&comm);
                s.spawn(move |_| {
                    for round in 0..ROUNDS {
                        // Randomized sleeps shuffle arrival order so fast
                        // ranks lap into the next round's entry gate.
                        std::thread::sleep(Duration::from_micros(jitter_us(rank, round, 300)));
                        let out = comm.allgather(rank, vec![round * RANKS as u64 + rank as u64]);
                        let want: Vec<u64> =
                            (0..RANKS as u64).map(|r| round * RANKS as u64 + r).collect();
                        assert_eq!(out, want, "rank {rank} round {round}");
                    }
                });
            }
        })
        .unwrap();
    });
}

#[test]
fn rank_order_concat_holds_under_contention() {
    const RANKS: usize = 8;
    const ROUNDS: u64 = 40;
    with_watchdog(60, || {
        let comm: Arc<Communicator<(usize, u64)>> = Communicator::new(RANKS);
        crossbeam::scope(|s| {
            for rank in 0..RANKS {
                let comm = Arc::clone(&comm);
                s.spawn(move |_| {
                    for round in 0..ROUNDS {
                        std::thread::sleep(Duration::from_micros(jitter_us(rank, round, 200)));
                        // Variable-length contributions: rank r sends r+1
                        // tagged items.
                        let data: Vec<(usize, u64)> =
                            (0..rank + 1).map(|_| (rank, round)).collect();
                        let out = comm.allgather(rank, data);
                        assert_eq!(out.len(), RANKS * (RANKS + 1) / 2, "round {round}");
                        // The concat must be grouped by rank, in rank order,
                        // and every element must carry this round's tag —
                        // no matter which rank assembled the result.
                        let mut expect = Vec::new();
                        for r in 0..RANKS {
                            expect.extend(std::iter::repeat_n((r, round), r + 1));
                        }
                        assert_eq!(out, expect, "rank {rank} round {round}");
                    }
                });
            }
        })
        .unwrap();
    });
}

#[test]
fn one_slow_rank_stalls_but_never_corrupts() {
    const RANKS: usize = 6;
    const ROUNDS: u64 = 12;
    with_watchdog(60, || {
        let comm: Arc<Communicator<u64>> = Communicator::new(RANKS);
        crossbeam::scope(|s| {
            for rank in 0..RANKS {
                let comm = Arc::clone(&comm);
                s.spawn(move |_| {
                    for _round in 0..ROUNDS {
                        if rank == 0 {
                            // Rank 0 is a straggler every round; the others
                            // queue on the entry gate of the next round.
                            std::thread::sleep(Duration::from_millis(3));
                        }
                        let out = comm.allgather(rank, vec![rank as u64]);
                        assert_eq!(out, (0..RANKS as u64).collect::<Vec<u64>>());
                    }
                });
            }
        })
        .unwrap();
    });
}

#[test]
fn barriers_interleaved_with_gathers() {
    const RANKS: usize = 5;
    with_watchdog(60, || {
        let comm: Arc<Communicator<usize>> = Communicator::new(RANKS);
        crossbeam::scope(|s| {
            for rank in 0..RANKS {
                let comm = Arc::clone(&comm);
                s.spawn(move |_| {
                    for round in 0..30u64 {
                        std::thread::sleep(Duration::from_micros(jitter_us(rank, round, 150)));
                        if round % 3 == 0 {
                            comm.barrier(rank);
                        } else {
                            let out = comm.allgather(rank, vec![rank]);
                            assert_eq!(out, (0..RANKS).collect::<Vec<usize>>());
                        }
                    }
                });
            }
        })
        .unwrap();
    });
}
