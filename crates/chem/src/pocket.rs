//! Synthetic protein binding pockets for the four SARS-CoV-2 targets.
//!
//! The paper screens two binding sites on the spike protein (`spike1`,
//! `spike2`) and two conformations of the main-protease active site
//! (`protease1`, `protease2`). We cannot ship the crystal structures
//! (PDB 6LU7 etc.), so each target is a procedurally generated pocket: a
//! roughly hemispherical shell of protein atoms around an origin-centered
//! cavity, with per-target size and chemistry matching the paper's
//! qualitative description — Mpro sites are large pockets, spike sites are
//! small and shallow (§5.3). `protease2` is the same site as `protease1`
//! under a conformational perturbation.

use crate::element::Element;
use crate::geom::Vec3;
use crate::mol::Atom;
use dftensor::rng::{derive_seed, normal_with, rng, uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four screening targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetSite {
    /// SARS-CoV-2 main protease (Mpro), primary site.
    Protease1,
    /// Mpro under a conformational perturbation of the same site.
    Protease2,
    /// Spike receptor-binding domain, site 1.
    Spike1,
    /// Spike receptor-binding domain, site 2.
    Spike2,
}

impl TargetSite {
    /// All four screening targets.
    pub const ALL: [TargetSite; 4] =
        [TargetSite::Protease1, TargetSite::Protease2, TargetSite::Spike1, TargetSite::Spike2];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TargetSite::Protease1 => "protease1",
            TargetSite::Protease2 => "protease2",
            TargetSite::Spike1 => "spike1",
            TargetSite::Spike2 => "spike2",
        }
    }

    /// Parent protein.
    pub fn protein(self) -> &'static str {
        match self {
            TargetSite::Protease1 | TargetSite::Protease2 => "Mpro",
            TargetSite::Spike1 | TargetSite::Spike2 => "spike",
        }
    }

    /// Assay concentration used experimentally: 100 µM for Mpro, 10 µM for
    /// spike (§5.2).
    pub fn assay_concentration_um(self) -> f64 {
        match self.protein() {
            "Mpro" => 100.0,
            _ => 10.0,
        }
    }

    fn spec(self) -> PocketSpec {
        match self {
            // Large, enclosed protease pockets; conformation 2 is the same
            // chemistry with perturbed geometry.
            TargetSite::Protease1 => PocketSpec {
                base_seed_stream: 0xA1,
                radius: 10.5,
                num_atoms: 150,
                hydrophobic_frac: 0.46,
                acceptor_frac: 0.30,
                openness: 0.35,
                conformational_jitter: 0.0,
            },
            TargetSite::Protease2 => PocketSpec {
                base_seed_stream: 0xA1, // same site...
                radius: 10.5,
                num_atoms: 150,
                hydrophobic_frac: 0.46,
                acceptor_frac: 0.30,
                openness: 0.35,
                conformational_jitter: 0.9, // ...different conformation
            },
            // Small, shallow spike interface sites.
            TargetSite::Spike1 => PocketSpec {
                base_seed_stream: 0xB1,
                radius: 6.8,
                num_atoms: 70,
                hydrophobic_frac: 0.30,
                acceptor_frac: 0.42,
                openness: 0.65,
                conformational_jitter: 0.0,
            },
            TargetSite::Spike2 => PocketSpec {
                base_seed_stream: 0xB2,
                radius: 7.4,
                num_atoms: 78,
                hydrophobic_frac: 0.34,
                acceptor_frac: 0.38,
                openness: 0.60,
                conformational_jitter: 0.0,
            },
        }
    }
}

/// Per-target pocket generation parameters.
#[derive(Debug, Clone, Copy)]
struct PocketSpec {
    base_seed_stream: u64,
    /// Shell radius in Å; also the cavity size a ligand can occupy.
    radius: f64,
    num_atoms: usize,
    hydrophobic_frac: f64,
    acceptor_frac: f64,
    /// Fraction of the sphere left open as the entrance (0 = fully
    /// enclosed, 1 = flat surface patch).
    openness: f64,
    /// Positional noise applied after generation to model an alternative
    /// conformation of the same site.
    conformational_jitter: f64,
}

/// A receptor binding site: a shell of protein atoms around the origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BindingPocket {
    /// Which screening target this pocket realizes.
    pub target: TargetSite,
    /// Receptor shell atoms surrounding the cavity.
    pub atoms: Vec<Atom>,
    /// Cavity radius in Å (ligand placement volume).
    pub radius: f64,
    /// Unit vector of the pocket entrance (ligands enter along -entrance).
    pub entrance: Vec3,
}

impl BindingPocket {
    /// Deterministically generates the pocket for a target under a campaign
    /// seed. `protease1`/`protease2` share a base structure and differ by a
    /// conformational perturbation, mirroring the two Mpro conformations.
    pub fn generate(target: TargetSite, campaign_seed: u64) -> BindingPocket {
        let spec = target.spec();
        // The base structure seed ignores the conformational jitter so the
        // two protease conformations start identical.
        let mut r = rng(derive_seed(campaign_seed, spec.base_seed_stream));
        let mut atoms = Vec::with_capacity(spec.num_atoms);
        // The entrance cap is around +z: atoms are only placed where
        // z/r < 1 - 2*openness.
        let z_cap = 1.0 - 2.0 * spec.openness;
        while atoms.len() < spec.num_atoms {
            // Uniform direction on the sphere.
            let z = uniform(&mut r, -1.0, 1.0);
            let phi = uniform(&mut r, 0.0, std::f64::consts::TAU);
            if z > z_cap {
                continue; // entrance opening
            }
            let xy = (1.0 - z * z).sqrt();
            let dir = Vec3::new(xy * phi.cos(), xy * phi.sin(), z);
            let rad = spec.radius + normal_with(&mut r, 1.2, 0.5).abs();
            let pos = dir.scale(rad);
            let u: f64 = r.gen();
            let element = if u < spec.hydrophobic_frac {
                if r.gen::<f64>() < 0.9 {
                    Element::C
                } else {
                    Element::S
                }
            } else if u < spec.hydrophobic_frac + spec.acceptor_frac {
                if r.gen::<f64>() < 0.6 {
                    Element::O
                } else {
                    Element::N
                }
            } else if u < spec.hydrophobic_frac + spec.acceptor_frac + 0.18 {
                Element::N
            } else {
                Element::C
            };
            let mut atom = Atom::new(element, pos);
            // Protein partial charges: polar atoms carry fractional charge.
            atom.partial_charge = match element {
                Element::O => normal_with(&mut r, -0.45, 0.08),
                Element::N => normal_with(&mut r, -0.30, 0.10),
                Element::S => normal_with(&mut r, -0.10, 0.05),
                _ => normal_with(&mut r, 0.05, 0.05),
            };
            atoms.push(atom);
        }
        // Conformational perturbation for the alternate protease state —
        // seeded separately so it is deterministic per target.
        if spec.conformational_jitter > 0.0 {
            let mut jr = rng(derive_seed(campaign_seed, spec.base_seed_stream ^ 0xC0FFEE));
            for a in &mut atoms {
                a.pos = a.pos.add(Vec3::new(
                    normal_with(&mut jr, 0.0, spec.conformational_jitter),
                    normal_with(&mut jr, 0.0, spec.conformational_jitter),
                    normal_with(&mut jr, 0.0, spec.conformational_jitter),
                ));
                // A conformational change rearranges the shell but must not
                // collapse the cavity: push any atom that drifted inside the
                // ligand volume back out to the shell radius.
                let n = a.pos.norm();
                if n < spec.radius && n > 0.0 {
                    a.pos = a.pos.scale(spec.radius / n);
                }
            }
        }
        BindingPocket { target, atoms, radius: spec.radius, entrance: Vec3::new(0.0, 0.0, 1.0) }
    }

    /// Number of pocket atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Fraction of hydrophobic pocket atoms (used by tests and the oracle).
    pub fn hydrophobic_fraction(&self) -> f64 {
        if self.atoms.is_empty() {
            return 0.0;
        }
        self.atoms.iter().filter(|a| a.element.is_hydrophobic()).count() as f64
            / self.atoms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_target() {
        for t in TargetSite::ALL {
            let a = BindingPocket::generate(t, 11);
            let b = BindingPocket::generate(t, 11);
            assert_eq!(a, b, "{t:?}");
        }
    }

    #[test]
    fn protease_pockets_are_larger_than_spike() {
        let p1 = BindingPocket::generate(TargetSite::Protease1, 1);
        let s1 = BindingPocket::generate(TargetSite::Spike1, 1);
        assert!(p1.radius > s1.radius);
        assert!(p1.num_atoms() > s1.num_atoms());
    }

    #[test]
    fn protease_conformations_share_chemistry_but_differ_geometrically() {
        let p1 = BindingPocket::generate(TargetSite::Protease1, 5);
        let p2 = BindingPocket::generate(TargetSite::Protease2, 5);
        assert_eq!(p1.num_atoms(), p2.num_atoms());
        // Same elements in the same order (same base structure)...
        for (a, b) in p1.atoms.iter().zip(&p2.atoms) {
            assert_eq!(a.element, b.element);
        }
        // ...but displaced positions.
        let mean_shift: f64 =
            p1.atoms.iter().zip(&p2.atoms).map(|(a, b)| a.pos.dist(b.pos)).sum::<f64>()
                / p1.num_atoms() as f64;
        assert!(mean_shift > 0.5, "mean conformational shift {mean_shift}");
    }

    #[test]
    fn pocket_atoms_surround_a_cavity() {
        for t in TargetSite::ALL {
            let p = BindingPocket::generate(t, 3);
            for a in &p.atoms {
                let d = a.pos.norm();
                assert!(d >= p.radius * 0.9, "{t:?}: atom inside cavity at {d:.1}");
            }
        }
    }

    #[test]
    fn entrance_region_is_open() {
        let p = BindingPocket::generate(TargetSite::Protease1, 9);
        // No atom directly above the opening (z close to +radius).
        let blocked = p.atoms.iter().any(|a| a.pos.z / a.pos.norm() > 0.6);
        assert!(!blocked, "entrance cap should be empty");
    }

    #[test]
    fn assay_concentrations_match_paper() {
        assert_eq!(TargetSite::Protease1.assay_concentration_um(), 100.0);
        assert_eq!(TargetSite::Spike2.assay_concentration_um(), 10.0);
    }
}
