//! Minimal 3-D geometry: vectors and rotations.

use serde::{Deserialize, Serialize};

/// A 3-D point/vector in Å.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (Å).
    pub x: f64,
    /// Y component (Å).
    pub y: f64,
    /// Z component (Å).
    pub z: f64,
}

#[allow(clippy::should_implement_trait)] // add/sub are the natural names for a math vector
impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Builds a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Component-wise sum.
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Component-wise difference.
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiple.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to `o`.
    pub fn dist(self, o: Vec3) -> f64 {
        self.sub(o).norm()
    }

    /// Squared distance to `o` (avoids the square root).
    pub fn dist2(self, o: Vec3) -> f64 {
        let d = self.sub(o);
        d.dot(d)
    }

    /// Unit vector in the same direction; returns +x for the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            self.scale(1.0 / n)
        }
    }
}

/// A 3×3 rotation matrix (row major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    /// Row-major matrix entries.
    pub m: [[f64; 3]; 3],
}

impl Rotation {
    /// Identity rotation.
    pub fn identity() -> Self {
        Self { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// Rotation of `angle` radians about a (normalized) axis, via the
    /// Rodrigues formula.
    pub fn about_axis(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalized();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (a.x, a.y, a.z);
        Self {
            m: [
                [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
                [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
                [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
            ],
        }
    }

    /// Applies the rotation to a vector.
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Rotation) -> Rotation {
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * other.m[k][j]).sum();
            }
        }
        Rotation { m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn vector_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.add(b), Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b.sub(a), Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!((Vec3::ZERO.normalized().norm() - 1.0).abs() < EPS);
        let v = Vec3::new(0.0, 0.0, 7.0).normalized();
        assert!((v.z - 1.0).abs() < EPS);
    }

    #[test]
    fn rotation_preserves_length() {
        let r = Rotation::about_axis(Vec3::new(1.0, 1.0, 0.0), 1.234);
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert!((r.apply(v).norm() - v.norm()).abs() < 1e-10);
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = Rotation::about_axis(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
        let v = r.apply(Vec3::new(1.0, 0.0, 0.0));
        assert!(v.x.abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let r1 = Rotation::about_axis(Vec3::new(0.0, 1.0, 0.0), 0.5);
        let r2 = Rotation::about_axis(Vec3::new(1.0, 0.0, 0.0), -0.8);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let seq = r2.apply(r1.apply(v));
        let comp = r2.compose(&r1).apply(v);
        assert!(seq.dist(comp) < 1e-10);
    }
}
