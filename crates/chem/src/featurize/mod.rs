//! Featurization of protein–ligand complexes into the two model input
//! representations: voxel grids (3D-CNN) and spatial graphs (SG-CNN).

pub mod graph;
pub mod voxel;

pub use graph::{build_graph, GraphConfig, MolGraph, NODE_FEATURES};
pub use voxel::{voxelize, VoxelConfig};
