//! Featurization of protein–ligand complexes into the two model input
//! representations: voxel grids (3D-CNN) and spatial graphs (SG-CNN).
//!
//! Featurizing one complex is pure and independent of every other complex,
//! so the batch entry points below fan out over the current [`dfpool`]
//! pool. Results are collected **by input index**, so batch output is
//! bit-identical to calling the per-complex functions in a serial loop, at
//! every thread count.

pub mod graph;
pub mod voxel;

pub use graph::{build_graph, GraphConfig, MolGraph, NODE_FEATURES};
pub use voxel::{voxelize, VoxelConfig};

use crate::mol::Molecule;
use crate::pocket::BindingPocket;
use dftensor::tensor::Tensor;

/// Voxelizes a batch of ligands against their pockets in parallel on the
/// current pool; `out[i]` corresponds to `ligands[i]`.
pub fn voxelize_batch(
    cfg: &VoxelConfig,
    ligands: &[&Molecule],
    pocket: &BindingPocket,
) -> Vec<Tensor> {
    let _t = dftrace::span("chem.voxelize_batch");
    dftrace::counter_add("chem.compounds_voxelized", ligands.len() as u64);
    dfpool::current().parallel_map(ligands.len(), 1, |i| voxelize(cfg, ligands[i], pocket))
}

/// Builds spatial graphs for a batch of ligands in parallel on the current
/// pool; `out[i]` corresponds to `ligands[i]`.
pub fn build_graph_batch(
    cfg: &GraphConfig,
    ligands: &[&Molecule],
    pocket: &BindingPocket,
) -> Vec<MolGraph> {
    let _t = dftrace::span("chem.graph_batch");
    dftrace::counter_add("chem.compounds_graphed", ligands.len() as u64);
    dfpool::current().parallel_map(ligands.len(), 1, |i| build_graph(cfg, ligands[i], pocket))
}
