//! Spatial-graph featurization of a protein–ligand complex for the SG-CNN
//! head (PotentialNet-style).
//!
//! Nodes are the ligand atoms plus every pocket atom within the
//! non-covalent neighbour threshold of any ligand atom. Two edge types are
//! built, matching Table 1's search space:
//!
//! * **covalent** edges — the ligand's bonds plus pocket-atom pairs closer
//!   than the covalent threshold, capped at K nearest per node;
//! * **non-covalent** edges — any pair within the non-covalent threshold
//!   that is not covalently linked, capped at K nearest per node.

use crate::element::Element;
use crate::geom::Vec3;
use crate::mol::Molecule;
use crate::pocket::BindingPocket;
use dftensor::Tensor;
use serde::{Deserialize, Serialize};

/// Edge-construction hyper-parameters (rows "Non-covalent / Covalent K" and
/// "Neighbor Threshold" of Table 1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Max covalent neighbours per node.
    pub covalent_k: usize,
    /// Max non-covalent neighbours per node.
    pub noncovalent_k: usize,
    /// Covalent distance threshold in Å.
    pub covalent_threshold: f64,
    /// Non-covalent distance threshold in Å.
    pub noncovalent_threshold: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        // The optimized SG-CNN values from Table 2.
        Self {
            covalent_k: 6,
            noncovalent_k: 3,
            covalent_threshold: 2.24,
            noncovalent_threshold: 5.22,
        }
    }
}

/// Number of per-node features: one-hot element class, partial charge,
/// scaled vdW radius, hydrophobic/donor/acceptor flags, is-ligand flag.
pub const NODE_FEATURES: usize = Element::NUM_CLASSES + 6;

/// A featurized protein–ligand graph.
#[derive(Debug, Clone)]
pub struct MolGraph {
    /// `[num_nodes, NODE_FEATURES]` node feature matrix.
    pub node_feats: Tensor,
    /// Directed covalent edges (both directions present).
    pub covalent_edges: Vec<(usize, usize)>,
    /// Per-edge distances (Å) aligned with `covalent_edges`.
    pub covalent_dists: Vec<f64>,
    /// Directed non-covalent edges (both directions present).
    pub noncovalent_edges: Vec<(usize, usize)>,
    /// Per-edge distances (Å) aligned with `noncovalent_edges`.
    pub noncovalent_dists: Vec<f64>,
    /// True for ligand nodes (the SG-CNN gathers over these only).
    pub ligand_mask: Vec<bool>,
}

impl MolGraph {
    /// Total nodes (ligand + pocket) in the graph.
    pub fn num_nodes(&self) -> usize {
        self.ligand_mask.len()
    }

    /// Nodes flagged as ligand atoms.
    pub fn num_ligand_nodes(&self) -> usize {
        self.ligand_mask.iter().filter(|&&l| l).count()
    }

    /// Appends a canonical, platform-independent byte encoding of this
    /// featurization to `out`: shape, node-feature bits, both edge lists
    /// with their distances, and the ligand mask, all little-endian with
    /// floats as raw bits. Two graphs serialize identically **iff** their
    /// featurized content is identical, which is what makes the serving
    /// cache content-addressed (keys are a hash of these bytes, not of the
    /// request that produced them).
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        for &d in self.node_feats.shape() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in self.node_feats.data() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for (edges, dists) in [
            (&self.covalent_edges, &self.covalent_dists),
            (&self.noncovalent_edges, &self.noncovalent_dists),
        ] {
            out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
            for &(a, b) in edges.iter() {
                out.extend_from_slice(&(a as u64).to_le_bytes());
                out.extend_from_slice(&(b as u64).to_le_bytes());
            }
            for &d in dists.iter() {
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
        }
        for &l in &self.ligand_mask {
            out.push(l as u8);
        }
    }
}

struct Node {
    pos: Vec3,
    element: Element,
    charge: f64,
    is_ligand: bool,
}

/// Builds the spatial graph for one pose.
pub fn build_graph(cfg: &GraphConfig, ligand: &Molecule, pocket: &BindingPocket) -> MolGraph {
    assert!(
        cfg.covalent_threshold < cfg.noncovalent_threshold,
        "covalent threshold must be below non-covalent threshold"
    );
    // Collect nodes: all ligand atoms, then relevant pocket atoms.
    let mut nodes: Vec<Node> = ligand
        .atoms
        .iter()
        .map(|a| Node { pos: a.pos, element: a.element, charge: a.partial_charge, is_ligand: true })
        .collect();
    let nl = nodes.len();
    for pa in &pocket.atoms {
        let near =
            ligand.atoms.iter().any(|la| la.pos.dist(pa.pos) <= cfg.noncovalent_threshold + 1.0);
        if near {
            nodes.push(Node {
                pos: pa.pos,
                element: pa.element,
                charge: pa.partial_charge,
                is_ligand: false,
            });
        }
    }
    let n = nodes.len();

    // Node features.
    let mut feats = Tensor::zeros(&[n, NODE_FEATURES]);
    for (i, node) in nodes.iter().enumerate() {
        let row = &mut feats.data_mut()[i * NODE_FEATURES..(i + 1) * NODE_FEATURES];
        row[node.element.channel_class()] = 1.0;
        let base = Element::NUM_CLASSES;
        row[base] = node.charge as f32;
        row[base + 1] = (node.element.vdw_radius() / 2.0) as f32;
        row[base + 2] = node.element.is_hydrophobic() as u8 as f32;
        row[base + 3] = node.element.is_hbond_donor() as u8 as f32;
        row[base + 4] = node.element.is_hbond_acceptor() as u8 as f32;
        row[base + 5] = node.is_ligand as u8 as f32;
    }

    // Covalent adjacency: ligand bonds are authoritative; pocket pairs use
    // the distance threshold.
    let mut covalent_pairs: Vec<(usize, usize, f64)> =
        ligand.bonds.iter().map(|b| (b.a, b.b, nodes[b.a].pos.dist(nodes[b.b].pos))).collect();
    for i in nl..n {
        for j in (i + 1)..n {
            let d = nodes[i].pos.dist(nodes[j].pos);
            if d <= cfg.covalent_threshold {
                covalent_pairs.push((i, j, d));
            }
        }
    }
    let (covalent_edges, covalent_dists) =
        cap_and_direct(&covalent_pairs, n, cfg.covalent_k, &nodes);
    let covalent_set: std::collections::HashSet<(usize, usize)> =
        covalent_edges.iter().copied().collect();

    // Non-covalent pairs: any two nodes within threshold, not covalently
    // linked. Cross ligand–pocket contacts are what carries the binding
    // signal; close intra-molecular contacts are retained as in PotentialNet.
    let mut noncovalent_pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if covalent_set.contains(&(i, j)) {
                continue;
            }
            let d = nodes[i].pos.dist(nodes[j].pos);
            if d <= cfg.noncovalent_threshold {
                noncovalent_pairs.push((i, j, d));
            }
        }
    }
    let (noncovalent_edges, noncovalent_dists) =
        cap_and_direct(&noncovalent_pairs, n, cfg.noncovalent_k, &nodes);

    MolGraph {
        node_feats: feats,
        covalent_edges,
        covalent_dists,
        noncovalent_edges,
        noncovalent_dists,
        ligand_mask: nodes.iter().map(|nd| nd.is_ligand).collect(),
    }
}

/// Keeps at most `k` nearest undirected partners per node, then emits both
/// directions of every surviving pair along with the edge distances.
fn cap_and_direct(
    pairs: &[(usize, usize, f64)],
    n: usize,
    k: usize,
    nodes: &[Node],
) -> (Vec<(usize, usize)>, Vec<f64>) {
    // Per-node candidate lists sorted by distance.
    let mut per_node: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
    for &(a, b, d) in pairs {
        per_node[a].push((d, b));
        per_node[b].push((d, a));
    }
    for lst in &mut per_node {
        lst.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
        lst.truncate(k);
    }
    // A pair survives if either endpoint keeps it (PyG-style kNN graphs are
    // directed; we symmetrize to keep message passing bidirectional).
    let mut kept: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (a, lst) in per_node.iter().enumerate() {
        for &(_, b) in lst {
            kept.insert((a.min(b), a.max(b)));
        }
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(kept.len() * 2);
    for (a, b) in kept {
        edges.push((a, b));
        edges.push((b, a));
    }
    edges.sort_unstable();
    let dists = edges.iter().map(|&(a, b)| nodes[a].pos.dist(nodes[b].pos)).collect();
    (edges, dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmol::{generate_molecule, MolGenConfig};
    use crate::mol::{Atom, BondOrder};
    use crate::pocket::TargetSite;

    fn small_ligand() -> Molecule {
        let mut m = Molecule::new("lig");
        m.add_atom(Atom::new(Element::C, Vec3::new(0.0, 0.0, 0.0)));
        m.add_atom(Atom::new(Element::N, Vec3::new(1.4, 0.0, 0.0)));
        m.add_atom(Atom::new(Element::O, Vec3::new(2.8, 0.0, 0.0)));
        m.add_bond(0, 1, BondOrder::Single);
        m.add_bond(1, 2, BondOrder::Single);
        m
    }

    fn empty_pocket() -> BindingPocket {
        BindingPocket {
            target: TargetSite::Spike1,
            atoms: vec![],
            radius: 5.0,
            entrance: Vec3::new(0.0, 0.0, 1.0),
        }
    }

    #[test]
    fn ligand_bonds_become_covalent_edges() {
        let g = build_graph(&GraphConfig::default(), &small_ligand(), &empty_pocket());
        assert_eq!(g.num_nodes(), 3);
        assert!(g.covalent_edges.contains(&(0, 1)));
        assert!(g.covalent_edges.contains(&(1, 0)));
        assert!(g.covalent_edges.contains(&(1, 2)));
        // Atoms 0 and 2 are 2.8 Å apart: not covalent, but non-covalent.
        assert!(!g.covalent_edges.contains(&(0, 2)));
        assert!(g.noncovalent_edges.contains(&(0, 2)));
    }

    #[test]
    fn pocket_nodes_are_distance_filtered() {
        let mut pocket = empty_pocket();
        pocket.atoms.push(Atom::new(Element::O, Vec3::new(0.0, 3.0, 0.0))); // near
        pocket.atoms.push(Atom::new(Element::O, Vec3::new(0.0, 50.0, 0.0))); // far
        let g = build_graph(&GraphConfig::default(), &small_ligand(), &pocket);
        assert_eq!(g.num_nodes(), 4, "only the near pocket atom joins the graph");
        assert_eq!(g.num_ligand_nodes(), 3);
        assert!(!g.ligand_mask[3]);
    }

    #[test]
    fn node_features_have_documented_layout() {
        let g = build_graph(&GraphConfig::default(), &small_ligand(), &empty_pocket());
        assert_eq!(g.node_feats.shape(), &[3, NODE_FEATURES]);
        // Node 0 is carbon: one-hot class 0, hydrophobic, ligand flag set.
        let row = g.node_feats.row(0);
        assert_eq!(row[Element::C.channel_class()], 1.0);
        assert_eq!(row[Element::NUM_CLASSES + 2], 1.0, "hydrophobic");
        assert_eq!(row[NODE_FEATURES - 1], 1.0, "is_ligand");
    }

    #[test]
    fn k_capping_bounds_degree() {
        let cfg = GraphConfig { noncovalent_k: 2, ..GraphConfig::default() };
        let lig = generate_molecule(&MolGenConfig::default(), "m", 5);
        let pocket = BindingPocket::generate(TargetSite::Protease1, 5);
        let g = build_graph(&cfg, &lig, &pocket);
        // Undirected degree from the capped side can still exceed k when a
        // neighbour keeps the edge, but the *kept-list* construction bounds
        // the total edge count by n * k pairs.
        assert!(g.noncovalent_edges.len() <= g.num_nodes() * cfg.noncovalent_k * 2);
        // Every edge is mirrored.
        for &(a, b) in &g.noncovalent_edges {
            assert!(g.noncovalent_edges.contains(&(b, a)));
        }
    }

    #[test]
    fn realistic_complex_produces_contacts() {
        let mut lig = generate_molecule(&MolGenConfig::default(), "m", 9);
        // Centre the ligand in the pocket cavity.
        let c = lig.centroid();
        lig.translate(c.scale(-1.0));
        let pocket = BindingPocket::generate(TargetSite::Spike1, 9);
        let g = build_graph(&GraphConfig::default(), &lig, &pocket);
        assert!(g.num_nodes() > lig.num_atoms(), "pocket atoms should join");
        assert!(!g.noncovalent_edges.is_empty());
    }

    #[test]
    #[should_panic(expected = "below non-covalent")]
    fn threshold_ordering_is_validated() {
        let cfg = GraphConfig {
            covalent_threshold: 6.0,
            noncovalent_threshold: 3.0,
            ..GraphConfig::default()
        };
        build_graph(&cfg, &small_ligand(), &empty_pocket());
    }
}
