//! Voxelization of a protein–ligand complex for the 3D-CNN head.
//!
//! Follows the FAST representation: a cubic grid centred on the pocket,
//! with separate channels for ligand and pocket atoms per element class
//! plus two partial-charge channels. Each atom deposits a truncated
//! Gaussian density with σ tied to its van-der-Waals radius.

use crate::element::Element;
use crate::mol::Molecule;
use crate::pocket::BindingPocket;
use dftensor::Tensor;
use serde::{Deserialize, Serialize};

/// Voxel grid configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VoxelConfig {
    /// Grid edge length in voxels (grid is `dim³`).
    pub grid_dim: usize,
    /// Edge length of one voxel in Å.
    pub resolution: f64,
}

impl Default for VoxelConfig {
    fn default() -> Self {
        // 16³ voxels at 1.5 Å spans 24 Å — covers the largest (protease)
        // pocket. The paper uses a denser grid on GPUs; the scaled-down
        // default keeps CPU training tractable while preserving geometry.
        Self { grid_dim: 16, resolution: 1.5 }
    }
}

impl VoxelConfig {
    /// Number of channels: ligand + pocket element classes, plus a ligand
    /// and a pocket partial-charge channel.
    pub const NUM_CHANNELS: usize = 2 * Element::NUM_CLASSES + 2;

    /// Physical extent of the grid in Å.
    pub fn extent(&self) -> f64 {
        self.grid_dim as f64 * self.resolution
    }

    /// Output tensor shape `[C, D, H, W]`.
    pub fn shape(&self) -> [usize; 4] {
        [Self::NUM_CHANNELS, self.grid_dim, self.grid_dim, self.grid_dim]
    }
}

/// Voxelizes one ligand pose inside its pocket. The grid is centred at the
/// pocket origin (the cavity centre). Returns `[C, D, H, W]`.
pub fn voxelize(cfg: &VoxelConfig, ligand: &Molecule, pocket: &BindingPocket) -> Tensor {
    let dim = cfg.grid_dim;
    let shape = cfg.shape();
    let mut out = Tensor::zeros(&shape);
    let half = cfg.extent() / 2.0;

    let mut deposit = |channel: usize, charge_channel: usize, atoms: &[crate::mol::Atom]| {
        let data = out.data_mut();
        for atom in atoms {
            let sigma = atom.element.vdw_radius() / 1.5;
            let cutoff = 2.0 * sigma;
            // Voxel-space bounding box of the truncated Gaussian.
            let lo = |c: f64| (((c - cutoff + half) / cfg.resolution).floor().max(0.0)) as usize;
            let hi = |c: f64| {
                ((((c + cutoff + half) / cfg.resolution).ceil()) as usize)
                    .min(dim.saturating_sub(1))
            };
            let (x0, x1) = (lo(atom.pos.x), hi(atom.pos.x));
            let (y0, y1) = (lo(atom.pos.y), hi(atom.pos.y));
            let (z0, z1) = (lo(atom.pos.z), hi(atom.pos.z));
            if x0 > x1 || y0 > y1 || z0 > z1 {
                continue; // outside the grid
            }
            let ch = channel + atom.element.channel_class();
            for zi in z0..=z1 {
                for yi in y0..=y1 {
                    for xi in x0..=x1 {
                        // Voxel centre in Å.
                        let vx = (xi as f64 + 0.5) * cfg.resolution - half;
                        let vy = (yi as f64 + 0.5) * cfg.resolution - half;
                        let vz = (zi as f64 + 0.5) * cfg.resolution - half;
                        let d2 = (vx - atom.pos.x).powi(2)
                            + (vy - atom.pos.y).powi(2)
                            + (vz - atom.pos.z).powi(2);
                        if d2 > cutoff * cutoff {
                            continue;
                        }
                        let g = (-d2 / (2.0 * sigma * sigma)).exp() as f32;
                        // Grid layout: [C, Z, Y, X].
                        let vox = (zi * dim + yi) * dim + xi;
                        data[ch * dim * dim * dim + vox] += g;
                        data[charge_channel * dim * dim * dim + vox] +=
                            g * atom.partial_charge as f32;
                    }
                }
            }
        }
    };

    // Ligand channels [0, 7) + charge channel 14; pocket channels [7, 14)
    // + charge channel 15.
    deposit(0, 2 * Element::NUM_CLASSES, &ligand.atoms);
    deposit(Element::NUM_CLASSES, 2 * Element::NUM_CLASSES + 1, &pocket.atoms);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Vec3;
    use crate::mol::Atom;
    use crate::pocket::TargetSite;

    fn single_atom_ligand(pos: Vec3) -> Molecule {
        let mut m = Molecule::new("probe");
        m.add_atom(Atom::new(Element::C, pos));
        m
    }

    fn empty_pocket() -> BindingPocket {
        BindingPocket {
            target: TargetSite::Spike1,
            atoms: vec![],
            radius: 5.0,
            entrance: Vec3::new(0.0, 0.0, 1.0),
        }
    }

    #[test]
    fn output_shape_matches_config() {
        let cfg = VoxelConfig::default();
        let t = voxelize(&cfg, &single_atom_ligand(Vec3::ZERO), &empty_pocket());
        assert_eq!(t.shape(), &cfg.shape());
    }

    #[test]
    fn carbon_lands_in_carbon_ligand_channel() {
        let cfg = VoxelConfig { grid_dim: 8, resolution: 1.0 };
        let t = voxelize(&cfg, &single_atom_ligand(Vec3::ZERO), &empty_pocket());
        let per_channel: Vec<f32> = (0..VoxelConfig::NUM_CHANNELS)
            .map(|c| {
                let n = cfg.grid_dim.pow(3);
                t.data()[c * n..(c + 1) * n].iter().sum()
            })
            .collect();
        let carbon = Element::C.channel_class();
        assert!(per_channel[carbon] > 0.0, "ligand C channel populated");
        // All other element channels are empty (charge channel may carry
        // the atom's partial charge).
        for (c, &v) in per_channel.iter().enumerate().take(2 * Element::NUM_CLASSES) {
            if c != carbon {
                assert_eq!(v, 0.0, "channel {c} should be empty");
            }
        }
    }

    #[test]
    fn density_peaks_at_atom_location() {
        let cfg = VoxelConfig { grid_dim: 9, resolution: 1.0 };
        let t = voxelize(&cfg, &single_atom_ligand(Vec3::ZERO), &empty_pocket());
        let dim = cfg.grid_dim;
        let ch = Element::C.channel_class();
        let centre = t.at(&[ch, dim / 2, dim / 2, dim / 2]);
        let edge = t.at(&[ch, dim / 2, dim / 2, dim - 1]);
        assert!(centre > edge, "centre {centre} should exceed edge {edge}");
        assert!(centre > 0.9, "atom sits at a voxel centre: {centre}");
    }

    #[test]
    fn atoms_outside_grid_are_ignored() {
        let cfg = VoxelConfig { grid_dim: 8, resolution: 1.0 };
        let t = voxelize(&cfg, &single_atom_ligand(Vec3::new(100.0, 0.0, 0.0)), &empty_pocket());
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn pocket_atoms_fill_pocket_channels() {
        let cfg = VoxelConfig::default();
        let pocket = BindingPocket::generate(TargetSite::Spike1, 1);
        let t = voxelize(&cfg, &Molecule::new("empty"), &pocket);
        let n = cfg.grid_dim.pow(3);
        let ligand_sum: f32 = t.data()[..Element::NUM_CLASSES * n].iter().sum();
        let pocket_sum: f32 =
            t.data()[Element::NUM_CLASSES * n..2 * Element::NUM_CLASSES * n].iter().sum();
        assert_eq!(ligand_sum, 0.0);
        assert!(pocket_sum > 0.0);
    }

    #[test]
    fn translation_changes_the_grid() {
        let cfg = VoxelConfig { grid_dim: 8, resolution: 1.0 };
        let a = voxelize(&cfg, &single_atom_ligand(Vec3::ZERO), &empty_pocket());
        let b = voxelize(&cfg, &single_atom_ligand(Vec3::new(2.0, 0.0, 0.0)), &empty_pocket());
        assert!(!a.allclose(&b, 1e-6));
    }
}
