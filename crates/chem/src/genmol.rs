//! Synthetic drug-like molecule generation.
//!
//! The paper screens >500 M compounds drawn from four public libraries
//! (ZINC "world-approved 2018", ChEMBL, eMolecules, Enamine's virtual
//! drug-like set). We cannot ship those libraries, so this module generates
//! molecules with the same *statistical* role: valence-correct bond graphs,
//! embedded 3-D conformers, Gasteiger-lite charges, and per-library
//! property distributions (size, heteroatom content, ring density). Every
//! compound is a pure function of `(library, index)`, so a "500-million
//! compound library" exists lazily without storage.

use crate::element::Element;
use crate::geom::Vec3;
use crate::mol::{Atom, Bond, BondOrder, Molecule};
use dftensor::rng::{derive_seed, normal_with, rng};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables for the random molecule builder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MolGenConfig {
    /// Inclusive heavy-atom count range.
    pub min_heavy: usize,
    /// Inclusive heavy-atom count upper bound.
    pub max_heavy: usize,
    /// Probability a new atom is a heteroatom (N/O/S/P).
    pub hetero_frac: f64,
    /// Probability a new atom is a halogen (terminal).
    pub halogen_frac: f64,
    /// Probability of attempting each candidate ring closure.
    pub ring_closure_prob: f64,
    /// Probability of upgrading an eligible single bond to a double bond.
    pub double_bond_prob: f64,
    /// Probability of branching (attaching to a random earlier atom rather
    /// than the previous one).
    pub branch_prob: f64,
}

impl Default for MolGenConfig {
    fn default() -> Self {
        Self {
            min_heavy: 10,
            max_heavy: 34,
            hetero_frac: 0.24,
            halogen_frac: 0.04,
            ring_closure_prob: 0.35,
            double_bond_prob: 0.20,
            branch_prob: 0.35,
        }
    }
}

/// Samples a heavy-atom element according to the config fractions.
fn sample_element(cfg: &MolGenConfig, r: &mut StdRng) -> Element {
    let u: f64 = r.gen();
    if u < cfg.halogen_frac {
        *dftensor::rng::choose(r, &[Element::F, Element::Cl, Element::Br, Element::I])
    } else if u < cfg.halogen_frac + cfg.hetero_frac {
        // N and O dominate; S and P are rarer.
        let v: f64 = r.gen();
        if v < 0.42 {
            Element::N
        } else if v < 0.84 {
            Element::O
        } else if v < 0.95 {
            Element::S
        } else {
            Element::P
        }
    } else {
        Element::C
    }
}

/// Builds a random, valence-correct, connected molecule with an embedded
/// 3-D conformer. Deterministic given the seed.
pub fn generate_molecule(cfg: &MolGenConfig, name: impl Into<String>, seed: u64) -> Molecule {
    let mut m = generate_topology(cfg, name, seed);
    // 4. Relax the conformer and assign charges.
    relax_conformer(&mut m, 60);
    m.assign_partial_charges();
    m
}

/// Builds the same molecule as [`generate_molecule`] but stops after the
/// topology is fixed: no conformer relaxation, no partial charges.
///
/// The skipped steps consume no randomness and never alter the bond
/// graph, so the topology (atoms, bonds, orders, rings) is bit-identical
/// to the fully materialized molecule's — only coordinates and charges
/// differ. Topological consumers (descriptors, rule filters, circular
/// fingerprints) use this path; the ligand-screening pipeline relies on
/// it, since conformer relaxation is O(atoms²·iterations) and dominates
/// generation cost.
pub fn generate_topology(cfg: &MolGenConfig, name: impl Into<String>, seed: u64) -> Molecule {
    let mut r = rng(seed);
    let n_heavy = r.gen_range(cfg.min_heavy..=cfg.max_heavy);
    let mut m = Molecule::new(name);

    // 1. Grow a tree of heavy atoms.
    m.add_atom(Atom::new(Element::C, Vec3::ZERO));
    while m.num_atoms() < n_heavy {
        let elem = sample_element(cfg, &mut r);
        // Pick an attachment point with spare valence.
        let used = m.used_valence();
        let candidates: Vec<usize> =
            (0..m.num_atoms()).filter(|&i| used[i] < m.atoms[i].element.max_valence()).collect();
        if candidates.is_empty() {
            break; // fully saturated (tiny molecules only)
        }
        let parent = if r.gen::<f64>() < cfg.branch_prob || m.num_atoms() == 1 {
            candidates[r.gen_range(0..candidates.len())]
        } else {
            // Prefer extending from the most recent attachable atom to make
            // chain-like backbones.
            *candidates.last().expect("non-empty")
        };
        let pos = place_next_to(&m, parent, elem, &mut r);
        let idx = m.add_atom(Atom::new(elem, pos));
        m.add_bond(parent, idx, BondOrder::Single);
    }

    // 2. Ring closures between atoms at graph distance 4..=6.
    close_rings(cfg, &mut m, &mut r);

    // 3. Upgrade some eligible bonds to double bonds.
    add_double_bonds(cfg, &mut m, &mut r);
    m
}

/// Places a new atom bonded to `parent`, choosing among random directions
/// the one furthest from existing atoms.
fn place_next_to(m: &Molecule, parent: usize, elem: Element, r: &mut StdRng) -> Vec3 {
    let p = m.atoms[parent].pos;
    let bond_len = m.atoms[parent].element.covalent_radius()
        + elem.covalent_radius()
        + normal_with(r, 0.0, 0.02);
    let mut best = p.add(Vec3::new(bond_len, 0.0, 0.0));
    let mut best_score = f64::NEG_INFINITY;
    for _ in 0..12 {
        let dir =
            Vec3::new(normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0))
                .normalized();
        let cand = p.add(dir.scale(bond_len));
        let min_d = m
            .atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != parent)
            .map(|(_, a)| a.pos.dist(cand))
            .fold(f64::INFINITY, f64::min);
        if min_d > best_score {
            best_score = min_d;
            best = cand;
        }
    }
    best
}

/// BFS graph distances from one atom.
fn graph_distances(m: &Molecule, from: usize) -> Vec<usize> {
    let adj = m.adjacency();
    let mut dist = vec![usize::MAX; m.num_atoms()];
    dist[from] = 0;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

fn close_rings(cfg: &MolGenConfig, m: &mut Molecule, r: &mut StdRng) {
    let max_rings = (m.num_atoms() / 6).max(1);
    let mut rings = 0usize;
    for a in 0..m.num_atoms() {
        if rings >= max_rings {
            break;
        }
        let used = m.used_valence();
        if used[a] >= m.atoms[a].element.max_valence() {
            continue;
        }
        let dist = graph_distances(m, a);
        let partners: Vec<usize> = (a + 1..m.num_atoms())
            .filter(|&b| {
                (4..=6).contains(&dist[b])
                    && used[b] < m.atoms[b].element.max_valence()
                    && m.atoms[b].element != Element::H
                    && !m.atoms[b].element.is_halogen()
                    && !m.atoms[a].element.is_halogen()
            })
            .collect();
        if partners.is_empty() || r.gen::<f64>() >= cfg.ring_closure_prob {
            continue;
        }
        let b = partners[r.gen_range(0..partners.len())];
        m.add_bond(a, b, BondOrder::Single);
        rings += 1;
    }
}

fn add_double_bonds(cfg: &MolGenConfig, m: &mut Molecule, r: &mut StdRng) {
    for bi in 0..m.bonds.len() {
        if r.gen::<f64>() >= cfg.double_bond_prob {
            continue;
        }
        let Bond { a, b, order } = m.bonds[bi];
        if order != BondOrder::Single {
            continue;
        }
        let used = m.used_valence();
        let ok = |i: usize| used[i] < m.atoms[i].element.max_valence();
        if ok(a) && ok(b) {
            m.bonds[bi].order = BondOrder::Double;
        }
    }
}

/// Simple force-field relaxation: harmonic bonds plus soft steric
/// repulsion between non-bonded pairs.
pub fn relax_conformer(m: &mut Molecule, iterations: usize) {
    let n = m.num_atoms();
    if n < 2 {
        return;
    }
    let bonded: std::collections::HashSet<(usize, usize)> =
        m.bonds.iter().map(|b| (b.a, b.b)).collect();
    let ideal: Vec<f64> = m
        .bonds
        .iter()
        .map(|b| m.atoms[b.a].element.covalent_radius() + m.atoms[b.b].element.covalent_radius())
        .collect();
    let step = 0.12;
    for _ in 0..iterations {
        let mut force = vec![Vec3::ZERO; n];
        // Bond springs.
        for (bi, b) in m.bonds.iter().enumerate() {
            let d = m.atoms[b.b].pos.sub(m.atoms[b.a].pos);
            let len = d.norm().max(1e-6);
            let f = d.scale((len - ideal[bi]) / len);
            force[b.a] = force[b.a].add(f);
            force[b.b] = force[b.b].sub(f);
        }
        // Steric repulsion for non-bonded pairs that clash.
        for i in 0..n {
            for j in (i + 1)..n {
                if bonded.contains(&(i, j)) {
                    continue;
                }
                let min_d =
                    0.8 * (m.atoms[i].element.vdw_radius() + m.atoms[j].element.vdw_radius()) * 0.5
                        + 1.0;
                let d = m.atoms[j].pos.sub(m.atoms[i].pos);
                let len = d.norm().max(1e-6);
                if len < min_d {
                    let f = d.scale((min_d - len) / len * 0.5);
                    force[i] = force[i].sub(f);
                    force[j] = force[j].add(f);
                }
            }
        }
        for (a, f) in m.atoms.iter_mut().zip(&force) {
            a.pos = a.pos.add(f.scale(step));
        }
    }
}

/// The four public compound sources the campaign drew from (§4 of the
/// paper), with scaled-down nominal sizes for local experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Library {
    /// ZINC-derived FDA/world-approved drugs (small, curated set).
    ZincWorldApproved,
    /// ChEMBL bioactive compounds.
    Chembl,
    /// eMolecules purchasable compounds.
    EMolecules,
    /// Enamine synthetically-feasible virtual compounds (the bulk).
    EnamineVirtual,
}

impl Library {
    /// All four screening libraries.
    pub const ALL: [Library; 4] =
        [Library::ZincWorldApproved, Library::Chembl, Library::EMolecules, Library::EnamineVirtual];

    /// The real-world library size the paper quotes (compounds).
    pub fn nominal_size(self) -> u64 {
        match self {
            Library::ZincWorldApproved => 5_800,
            Library::Chembl => 1_500_000,
            Library::EMolecules => 18_000_000,
            Library::EnamineVirtual => 480_000_000,
        }
    }

    /// Short identifier used in compound names and output files.
    pub fn tag(self) -> &'static str {
        match self {
            Library::ZincWorldApproved => "zinc",
            Library::Chembl => "chembl",
            Library::EMolecules => "emol",
            Library::EnamineVirtual => "enamine",
        }
    }

    /// Per-library generator distributions: approved drugs are mid-sized
    /// and balanced, ChEMBL skews larger and more polar, eMolecules runs
    /// smaller with more halogens, Enamine's virtual set is simple and
    /// chain-like (synthetic feasibility).
    pub fn gen_config(self) -> MolGenConfig {
        match self {
            Library::ZincWorldApproved => MolGenConfig {
                min_heavy: 14,
                max_heavy: 36,
                hetero_frac: 0.28,
                halogen_frac: 0.03,
                ring_closure_prob: 0.45,
                double_bond_prob: 0.25,
                branch_prob: 0.40,
            },
            Library::Chembl => MolGenConfig {
                min_heavy: 16,
                max_heavy: 40,
                hetero_frac: 0.30,
                halogen_frac: 0.04,
                ring_closure_prob: 0.40,
                double_bond_prob: 0.22,
                branch_prob: 0.38,
            },
            Library::EMolecules => MolGenConfig {
                min_heavy: 9,
                max_heavy: 28,
                hetero_frac: 0.22,
                halogen_frac: 0.08,
                ring_closure_prob: 0.30,
                double_bond_prob: 0.18,
                branch_prob: 0.32,
            },
            Library::EnamineVirtual => MolGenConfig {
                min_heavy: 10,
                max_heavy: 26,
                hetero_frac: 0.20,
                halogen_frac: 0.05,
                ring_closure_prob: 0.22,
                double_bond_prob: 0.15,
                branch_prob: 0.28,
            },
        }
    }

    /// Seed stream offset so libraries never collide.
    fn stream(self) -> u64 {
        match self {
            Library::ZincWorldApproved => 0x10_0000_0000,
            Library::Chembl => 0x20_0000_0000,
            Library::EMolecules => 0x30_0000_0000,
            Library::EnamineVirtual => 0x40_0000_0000,
        }
    }
}

/// Stable identifier of a compound within a library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompoundId {
    /// Source library.
    pub library: Library,
    /// Zero-based index within the library stream.
    pub index: u64,
}

impl std::fmt::Display for CompoundId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{:09}", self.library.tag(), self.index)
    }
}

/// A screenable compound: id plus generated structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Compound {
    /// Stable identifier within the campaign.
    pub id: CompoundId,
    /// The materialized molecule with one conformer.
    pub mol: Molecule,
}

impl Compound {
    /// Deterministically materializes compound `index` of a library under a
    /// campaign seed.
    pub fn materialize(library: Library, index: u64, campaign_seed: u64) -> Compound {
        let id = CompoundId { library, index };
        let seed = derive_seed(campaign_seed, library.stream() ^ index);
        let mol = generate_molecule(&library.gen_config(), id.to_string(), seed);
        Compound { id, mol }
    }

    /// Materializes the compound's topology only (see
    /// [`generate_topology`]): identical bond graph to
    /// [`Compound::materialize`], but with the unrelaxed conformer and no
    /// partial charges. Orders of magnitude cheaper; the right form for
    /// descriptor, filter and fingerprint work, which never reads
    /// coordinates or charges. The only descriptor that differs is the
    /// geometric `radius_of_gyration`, which no filter rule or ligand
    /// score consumes.
    pub fn materialize_topology(library: Library, index: u64, campaign_seed: u64) -> Compound {
        let id = CompoundId { library, index };
        let seed = derive_seed(campaign_seed, library.stream() ^ index);
        let mol = generate_topology(&library.gen_config(), id.to_string(), seed);
        Compound { id, mol }
    }

    /// The compound's LinNot (SMILES-like) structure string.
    pub fn linnot(&self) -> String {
        crate::linnot::write_linnot(&self.mol)
    }

    /// Lipinski-style drug-likeness check used by ligand preparation
    /// (CDT2Ligand) to drop pathological structures. Thresholds are adapted
    /// to implicit-hydrogen molecules, where every N/O counts as a
    /// potential donor (heavy-atom convention), so the donor/acceptor caps
    /// sit above the classical rule-of-five values.
    pub fn is_drug_like(&self) -> bool {
        self.mol.molecular_weight() <= 620.0
            && self.mol.logp_estimate() <= 7.0
            && self.mol.num_hbond_donors() <= 9
            && self.mol.num_hbond_acceptors() <= 14
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_molecule(&MolGenConfig::default(), "m", 42);
        let b = generate_molecule(&MolGenConfig::default(), "m", 42);
        assert_eq!(a, b);
        let c = generate_molecule(&MolGenConfig::default(), "m", 43);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_molecules_are_valid() {
        for seed in 0..40 {
            let m = generate_molecule(&MolGenConfig::default(), format!("m{seed}"), seed);
            assert!(m.is_connected(), "seed {seed} disconnected");
            let used = m.used_valence();
            for (i, a) in m.atoms.iter().enumerate() {
                assert!(
                    used[i] <= a.element.max_valence(),
                    "seed {seed} atom {i} ({:?}) over-valent: {} > {}",
                    a.element,
                    used[i],
                    a.element.max_valence()
                );
            }
            let total_charge: f64 = m.atoms.iter().map(|a| a.partial_charge).sum();
            assert!(total_charge.abs() < 1e-9, "charge not conserved");
        }
    }

    #[test]
    fn conformers_have_no_severe_clashes() {
        for seed in 0..20 {
            let m = generate_molecule(&MolGenConfig::default(), "m", seed);
            let bonded: std::collections::HashSet<(usize, usize)> =
                m.bonds.iter().map(|b| (b.a, b.b)).collect();
            for i in 0..m.num_atoms() {
                for j in (i + 1)..m.num_atoms() {
                    if bonded.contains(&(i, j)) {
                        continue;
                    }
                    let d = m.atoms[i].pos.dist(m.atoms[j].pos);
                    assert!(d > 0.7, "seed {seed}: atoms {i},{j} overlap at {d:.2} Å");
                }
            }
        }
    }

    #[test]
    fn library_distributions_differ() {
        let mean_heavy = |lib: Library| -> f64 {
            (0..30)
                .map(|i| Compound::materialize(lib, i, 7).mol.num_heavy_atoms() as f64)
                .sum::<f64>()
                / 30.0
        };
        let chembl = mean_heavy(Library::Chembl);
        let enamine = mean_heavy(Library::EnamineVirtual);
        assert!(
            chembl > enamine,
            "ChEMBL ({chembl:.1}) should be larger than Enamine ({enamine:.1})"
        );
    }

    #[test]
    fn compound_ids_are_stable_and_unique() {
        let a = Compound::materialize(Library::Chembl, 5, 1);
        let b = Compound::materialize(Library::Chembl, 5, 1);
        assert_eq!(a.mol, b.mol);
        let c = Compound::materialize(Library::EMolecules, 5, 1);
        assert_ne!(a.mol, c.mol, "same index in different libraries must differ");
        assert_eq!(a.id.to_string(), "chembl-000000005");
    }

    #[test]
    fn compounds_expose_linnot() {
        let c = Compound::materialize(Library::Chembl, 3, 9);
        let s = c.linnot();
        assert!(!s.is_empty());
        let back = crate::linnot::parse_linnot(&s).unwrap();
        assert!(crate::linnot::same_graph(&c.mol, &back));
    }

    #[test]
    fn topology_materialization_matches_the_full_path() {
        use crate::descriptors::Descriptors;
        use crate::fingerprint::{Fingerprint, FingerprintConfig};
        let cfg = FingerprintConfig::default();
        for i in 0..12u64 {
            let full = Compound::materialize(Library::Chembl, i, 7);
            let topo = Compound::materialize_topology(Library::Chembl, i, 7);
            assert_eq!(full.id, topo.id);
            // Identical bond graph: every topological consumer sees the
            // same molecule.
            assert!(crate::linnot::same_graph(&full.mol, &topo.mol));
            // Every descriptor except the radius of gyration (the one
            // geometric descriptor, unused by filters and scoring) must
            // match bit for bit.
            let mut df = Descriptors::compute(&full.mol);
            let dt = Descriptors::compute(&topo.mol);
            df.radius_of_gyration = dt.radius_of_gyration;
            assert_eq!(df, dt, "topological descriptors must not depend on relaxation");
            let fa = Fingerprint::compute(&cfg, &full.mol);
            let fb = Fingerprint::compute(&cfg, &topo.mol);
            assert_eq!(fa.words(), fb.words(), "fingerprints are topological");
        }
    }

    #[test]
    fn most_compounds_are_drug_like() {
        let frac = (0..50)
            .filter(|&i| Compound::materialize(Library::ZincWorldApproved, i, 3).is_drug_like())
            .count() as f64
            / 50.0;
        assert!(frac > 0.7, "drug-like fraction {frac}");
    }
}
