//! Molecules: atoms, bonds, conformers and the descriptors the screening
//! pipeline filters on.

use crate::element::Element;
use crate::geom::{Rotation, Vec3};
use serde::{Deserialize, Serialize};

/// One atom of a molecule or pocket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Chemical element.
    pub element: Element,
    /// Conformer position (Å).
    pub pos: Vec3,
    /// Gasteiger-lite partial charge in elementary-charge units.
    pub partial_charge: f64,
}

impl Atom {
    /// An uncharged atom of `element` at `pos`.
    pub fn new(element: Element, pos: Vec3) -> Self {
        Self { element, pos, partial_charge: 0.0 }
    }
}

/// Covalent bond order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BondOrder {
    /// Single bond.
    Single,
    /// Double bond.
    Double,
    /// Triple bond.
    Triple,
}

impl BondOrder {
    /// Valence units the bond consumes on each endpoint.
    pub fn valence(self) -> usize {
        match self {
            BondOrder::Single => 1,
            BondOrder::Double => 2,
            BondOrder::Triple => 3,
        }
    }
}

/// A covalent bond between atom indices `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bond {
    /// Lower endpoint atom index.
    pub a: usize,
    /// Higher endpoint atom index.
    pub b: usize,
    /// Covalent bond order.
    pub order: BondOrder,
}

/// A small molecule with one 3-D conformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Molecule {
    /// Compound identifier (library:index for generated compounds).
    pub name: String,
    /// Atoms with one 3-D conformer.
    pub atoms: Vec<Atom>,
    /// Covalent bonds between atom indices.
    pub bonds: Vec<Bond>,
}

impl Molecule {
    /// Creates an empty named molecule.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), atoms: Vec::new(), bonds: Vec::new() }
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of non-hydrogen atoms.
    pub fn num_heavy_atoms(&self) -> usize {
        self.atoms.iter().filter(|a| a.element != Element::H).count()
    }

    /// Adds an atom, returning its index.
    pub fn add_atom(&mut self, atom: Atom) -> usize {
        self.atoms.push(atom);
        self.atoms.len() - 1
    }

    /// Adds a bond (indices are normalized so `a < b`); panics on
    /// out-of-range or self bonds.
    pub fn add_bond(&mut self, a: usize, b: usize, order: BondOrder) {
        assert!(a != b, "self-bond on atom {a}");
        assert!(a < self.atoms.len() && b < self.atoms.len(), "bond index out of range");
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.bonds.push(Bond { a, b, order });
    }

    /// Molecular weight in Daltons.
    pub fn molecular_weight(&self) -> f64 {
        self.atoms.iter().map(|a| a.element.mass()).sum()
    }

    /// Geometric centroid of all atoms.
    pub fn centroid(&self) -> Vec3 {
        if self.atoms.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for a in &self.atoms {
            c = c.add(a.pos);
        }
        c.scale(1.0 / self.atoms.len() as f64)
    }

    /// Radius of gyration (spread of the conformer).
    pub fn radius_of_gyration(&self) -> f64 {
        if self.atoms.is_empty() {
            return 0.0;
        }
        let c = self.centroid();
        let s: f64 = self.atoms.iter().map(|a| a.pos.dist2(c)).sum();
        (s / self.atoms.len() as f64).sqrt()
    }

    /// Translates every atom by `delta`.
    pub fn translate(&mut self, delta: Vec3) {
        for a in &mut self.atoms {
            a.pos = a.pos.add(delta);
        }
    }

    /// Rotates the conformer about its centroid.
    pub fn rotate_about_centroid(&mut self, rot: &Rotation) {
        let c = self.centroid();
        for a in &mut self.atoms {
            a.pos = rot.apply(a.pos.sub(c)).add(c);
        }
    }

    /// Per-atom degree (number of bonds touching each atom).
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.atoms.len()];
        for b in &self.bonds {
            d[b.a] += 1;
            d[b.b] += 1;
        }
        d
    }

    /// Valence units already consumed per atom.
    pub fn used_valence(&self) -> Vec<usize> {
        let mut v = vec![0usize; self.atoms.len()];
        for b in &self.bonds {
            v[b.a] += b.order.valence();
            v[b.b] += b.order.valence();
        }
        v
    }

    /// Adjacency list over bonds.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.atoms.len()];
        for b in &self.bonds {
            adj[b.a].push(b.b);
            adj[b.b].push(b.a);
        }
        adj
    }

    /// True when the bond graph is a single connected component.
    pub fn is_connected(&self) -> bool {
        if self.atoms.is_empty() {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.atoms.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(i) = stack.pop() {
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == self.atoms.len()
    }

    /// Marks which bonds are bridges (removal disconnects the graph), via
    /// Tarjan's low-link algorithm. Bonds inside rings are not bridges.
    pub fn bridge_bonds(&self) -> Vec<bool> {
        let n = self.atoms.len();
        let adj: Vec<Vec<(usize, usize)>> = {
            let mut a = vec![Vec::new(); n];
            for (bi, b) in self.bonds.iter().enumerate() {
                a[b.a].push((b.b, bi));
                a[b.b].push((b.a, bi));
            }
            a
        };
        let mut disc = vec![usize::MAX; n];
        let mut low = vec![usize::MAX; n];
        let mut is_bridge = vec![false; self.bonds.len()];
        let mut timer = 0usize;
        // Iterative DFS to avoid recursion limits on long chains.
        for start in 0..n {
            if disc[start] != usize::MAX {
                continue;
            }
            // stack entries: (node, parent_edge, neighbor cursor)
            let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
            disc[start] = timer;
            low[start] = timer;
            timer += 1;
            while let Some(&(u, pe, cursor)) = stack.last() {
                if cursor < adj[u].len() {
                    stack.last_mut().expect("non-empty").2 += 1;
                    let (v, ei) = adj[u][cursor];
                    if ei == pe {
                        continue;
                    }
                    if disc[v] == usize::MAX {
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        stack.push((v, ei, 0));
                    } else {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p] = low[p].min(low[u]);
                        if low[u] > disc[p] {
                            is_bridge[pe] = true;
                        }
                    }
                }
            }
        }
        is_bridge
    }

    /// Per-atom heavy degree: bonds to non-hydrogen neighbours only. For
    /// implicit-hydrogen molecules (the generator convention) this equals
    /// [`Molecule::degrees`]; with explicit hydrogens it is what terminal-
    /// atom tests must use (a methyl carbon bonded to three H atoms is
    /// still terminal).
    pub fn heavy_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.atoms.len()];
        for b in &self.bonds {
            if self.atoms[b.a].element != Element::H && self.atoms[b.b].element != Element::H {
                d[b.a] += 1;
                d[b.b] += 1;
            }
        }
        d
    }

    /// Number of carbon atoms.
    pub fn num_carbons(&self) -> usize {
        self.atoms.iter().filter(|a| a.element == Element::C).count()
    }

    /// Number of bonds whose endpoints are both heavy atoms.
    pub fn num_heavy_bonds(&self) -> usize {
        self.bonds
            .iter()
            .filter(|b| {
                self.atoms[b.a].element != Element::H && self.atoms[b.b].element != Element::H
            })
            .count()
    }

    /// Rotatable bonds: single-order bridges whose endpoints are both
    /// non-terminal heavy atoms — the definition Vina's torsion-count
    /// penalty uses. Ring bonds are never rotatable (they are not
    /// bridges), which is how rings — aromatic or saturated — are
    /// perceived here: by cycle membership, not bond orders. Terminality
    /// uses the **heavy** degree, so explicit hydrogens cannot promote a
    /// terminal methyl into a rotor.
    pub fn num_rotatable_bonds(&self) -> usize {
        let bridges = self.bridge_bonds();
        let degrees = self.heavy_degrees();
        self.bonds
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                bridges[*i]
                    && b.order == BondOrder::Single
                    && degrees[b.a] > 1
                    && degrees[b.b] > 1
                    && self.atoms[b.a].element != Element::H
                    && self.atoms[b.b].element != Element::H
            })
            .count()
    }

    /// Strict rotatable-bond count: [`Molecule::num_rotatable_bonds`]
    /// minus amide-like C–N single bonds (the carbon carries a
    /// double-bonded oxygen), matching the convention the ZINC druglike
    /// rules and RDKit's strict pattern use. Kept separate from the Vina
    /// definition so docking torsion penalties are unaffected.
    pub fn num_rotatable_bonds_strict(&self) -> usize {
        let bridges = self.bridge_bonds();
        let degrees = self.heavy_degrees();
        // Carbons that carry a double-bonded oxygen (carbonyl-like).
        let mut carbonyl_c = vec![false; self.atoms.len()];
        for b in &self.bonds {
            if b.order == BondOrder::Double {
                let (ea, eb) = (self.atoms[b.a].element, self.atoms[b.b].element);
                if ea == Element::C && eb == Element::O {
                    carbonyl_c[b.a] = true;
                }
                if eb == Element::C && ea == Element::O {
                    carbonyl_c[b.b] = true;
                }
            }
        }
        let amide_like = |a: usize, b: usize| {
            let (ea, eb) = (self.atoms[a].element, self.atoms[b].element);
            (ea == Element::C && carbonyl_c[a] && eb == Element::N)
                || (eb == Element::C && carbonyl_c[b] && ea == Element::N)
        };
        self.bonds
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                bridges[*i]
                    && b.order == BondOrder::Single
                    && degrees[b.a] > 1
                    && degrees[b.b] > 1
                    && self.atoms[b.a].element != Element::H
                    && self.atoms[b.b].element != Element::H
                    && !amide_like(b.a, b.b)
            })
            .count()
    }

    /// Crude cLogP-style lipophilicity descriptor: hydrophobic atoms add,
    /// polar atoms subtract. Used by the drug-likeness filters and the
    /// assay simulator's solubility confounder.
    pub fn logp_estimate(&self) -> f64 {
        self.atoms
            .iter()
            .map(|a| match a.element {
                Element::C => 0.36,
                Element::S => 0.25,
                Element::F | Element::Cl | Element::Br | Element::I => 0.55,
                Element::N => -0.60,
                Element::O => -0.70,
                Element::P => -0.40,
                Element::H => 0.0,
            })
            .sum()
    }

    /// Count of hydrogen-bond donors (heavy-atom convention).
    pub fn num_hbond_donors(&self) -> usize {
        self.atoms.iter().filter(|a| a.element.is_hbond_donor()).count()
    }

    /// Count of hydrogen-bond acceptors.
    pub fn num_hbond_acceptors(&self) -> usize {
        self.atoms.iter().filter(|a| a.element.is_hbond_acceptor()).count()
    }

    /// Assigns Gasteiger-lite partial charges: each bond shifts charge from
    /// the less to the more electronegative endpoint proportionally to the
    /// electronegativity difference.
    pub fn assign_partial_charges(&mut self) {
        for a in &mut self.atoms {
            a.partial_charge = 0.0;
        }
        for b in &self.bonds {
            let ea = self.atoms[b.a].element.electronegativity();
            let eb = self.atoms[b.b].element.electronegativity();
            let shift = 0.08 * (eb - ea) * b.order.valence() as f64;
            self.atoms[b.a].partial_charge += shift;
            self.atoms[b.b].partial_charge -= shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new("chain");
        for i in 0..n {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 0.0, 0.0)));
        }
        for i in 1..n {
            m.add_bond(i - 1, i, BondOrder::Single);
        }
        m
    }

    fn ring(n: usize) -> Molecule {
        let mut m = chain(n);
        m.add_bond(0, n - 1, BondOrder::Single);
        m
    }

    #[test]
    fn weight_and_centroid() {
        let m = chain(3);
        assert!((m.molecular_weight() - 3.0 * 12.011).abs() < 1e-9);
        assert!((m.centroid().x - 1.5).abs() < 1e-12);
    }

    #[test]
    fn translate_and_rotate_preserve_internal_geometry() {
        let mut m = chain(4);
        let d01 = m.atoms[0].pos.dist(m.atoms[1].pos);
        m.translate(Vec3::new(3.0, -2.0, 1.0));
        m.rotate_about_centroid(&Rotation::about_axis(Vec3::new(0.0, 1.0, 1.0), 0.7));
        assert!((m.atoms[0].pos.dist(m.atoms[1].pos) - d01).abs() < 1e-10);
    }

    #[test]
    fn chain_bonds_are_bridges_ring_bonds_are_not() {
        let c = chain(5);
        assert!(c.bridge_bonds().iter().all(|&b| b));
        let r = ring(6);
        assert!(r.bridge_bonds().iter().all(|&b| !b));
    }

    #[test]
    fn ring_with_tail_mixes_bridges() {
        let mut m = ring(5);
        let t = m.add_atom(Atom::new(Element::C, Vec3::new(10.0, 0.0, 0.0)));
        m.add_bond(0, t, BondOrder::Single);
        let bridges = m.bridge_bonds();
        assert!(bridges[m.bonds.len() - 1], "tail bond must be a bridge");
        assert_eq!(bridges.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn rotatable_bond_counting() {
        // Butane-like chain C-C-C-C: the middle bond is rotatable, the
        // terminal ones are not (degree-1 endpoints).
        let m = chain(4);
        assert_eq!(m.num_rotatable_bonds(), 1);
        // A pure ring has none.
        assert_eq!(ring(6).num_rotatable_bonds(), 0);
    }

    #[test]
    fn explicit_hydrogens_do_not_create_rotors() {
        // Ethane with explicit hydrogens: C(H3)-C(H3). Both carbons have
        // full degree 4 but heavy degree 1, so the C-C bond is terminal.
        let mut m = Molecule::new("ethane");
        let c0 = m.add_atom(Atom::new(Element::C, Vec3::ZERO));
        let c1 = m.add_atom(Atom::new(Element::C, Vec3::new(1.5, 0.0, 0.0)));
        m.add_bond(c0, c1, BondOrder::Single);
        for i in 0..3 {
            let h = m.add_atom(Atom::new(Element::H, Vec3::new(-0.5, i as f64, 0.0)));
            m.add_bond(c0, h, BondOrder::Single);
            let h = m.add_atom(Atom::new(Element::H, Vec3::new(2.0, i as f64, 0.0)));
            m.add_bond(c1, h, BondOrder::Single);
        }
        assert_eq!(m.degrees()[c0], 4);
        assert_eq!(m.heavy_degrees()[c0], 1);
        assert_eq!(m.num_rotatable_bonds(), 0, "terminal methyls are not rotors");
        assert_eq!(m.num_heavy_bonds(), 1);
    }

    #[test]
    fn aromatic_ring_bonds_are_not_rotatable() {
        // Benzene-like alternating ring with an ethyl tail:
        // ring perception is cycle membership, not bond order, so none of
        // the ring bonds count; the two tail bonds give one rotor.
        let mut m = chain(6);
        m.add_bond(0, 5, BondOrder::Single);
        for bi in [0usize, 2, 4] {
            m.bonds[bi].order = BondOrder::Double;
        }
        let t0 = m.add_atom(Atom::new(Element::C, Vec3::new(9.0, 0.0, 0.0)));
        m.add_bond(0, t0, BondOrder::Single);
        let t1 = m.add_atom(Atom::new(Element::C, Vec3::new(10.5, 0.0, 0.0)));
        m.add_bond(t0, t1, BondOrder::Single);
        assert_eq!(m.num_rotatable_bonds(), 1, "only the ring-to-ethyl bond rotates");
        assert_eq!(m.num_rotatable_bonds_strict(), 1);
    }

    #[test]
    fn amide_bonds_are_excluded_from_strict_rotors() {
        // CH3-C(=O)-N(H)-CH3 backbone (implicit H): the C-N bond next to
        // the carbonyl is a rotor under the Vina definition but not under
        // the strict (ZINC/RDKit) one.
        let mut m = Molecule::new("amide");
        let c0 = m.add_atom(Atom::new(Element::C, Vec3::new(0.0, 0.0, 0.0)));
        let c1 = m.add_atom(Atom::new(Element::C, Vec3::new(1.5, 0.0, 0.0)));
        let o = m.add_atom(Atom::new(Element::O, Vec3::new(1.5, 1.2, 0.0)));
        let n = m.add_atom(Atom::new(Element::N, Vec3::new(3.0, 0.0, 0.0)));
        let c2 = m.add_atom(Atom::new(Element::C, Vec3::new(4.5, 0.0, 0.0)));
        m.add_bond(c0, c1, BondOrder::Single);
        m.add_bond(c1, o, BondOrder::Double);
        m.add_bond(c1, n, BondOrder::Single);
        m.add_bond(n, c2, BondOrder::Single);
        assert_eq!(m.num_rotatable_bonds(), 1, "vina counts the amide C-N");
        assert_eq!(m.num_rotatable_bonds_strict(), 0, "strict excludes the amide C-N");
    }

    #[test]
    fn disconnected_fragments_count_rotors_per_fragment() {
        // Two butane fragments: one rotor each, bridges computed per
        // component.
        let mut m = chain(4);
        let base = m.num_atoms();
        for i in 0..4 {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 10.0, 0.0)));
        }
        for i in 1..4 {
            m.add_bond(base + i - 1, base + i, BondOrder::Single);
        }
        assert!(!m.is_connected());
        assert_eq!(m.num_rotatable_bonds(), 2);
    }

    #[test]
    fn connectivity() {
        let mut m = chain(3);
        assert!(m.is_connected());
        m.add_atom(Atom::new(Element::O, Vec3::new(99.0, 0.0, 0.0)));
        assert!(!m.is_connected());
    }

    #[test]
    fn partial_charges_are_conservative_and_polar() {
        let mut m = Molecule::new("co");
        let c = m.add_atom(Atom::new(Element::C, Vec3::ZERO));
        let o = m.add_atom(Atom::new(Element::O, Vec3::new(1.4, 0.0, 0.0)));
        m.add_bond(c, o, BondOrder::Single);
        m.assign_partial_charges();
        let total: f64 = m.atoms.iter().map(|a| a.partial_charge).sum();
        assert!(total.abs() < 1e-12, "charge must be conserved");
        assert!(m.atoms[o].partial_charge < 0.0, "oxygen pulls charge");
        assert!(m.atoms[c].partial_charge > 0.0);
    }

    #[test]
    #[should_panic(expected = "self-bond")]
    fn self_bonds_rejected() {
        let mut m = chain(2);
        m.add_bond(1, 1, BondOrder::Single);
    }
}
