//! `dfchem` — the cheminformatics substrate for the Deep Fusion
//! reproduction.
//!
//! Replaces the RDKit/OpenBabel/Chimera toolchain and the crystal-structure
//! inputs the paper relies on:
//!
//! * [`element`]/[`mol`] — atoms, bonds, 3-D conformers and descriptors;
//! * [`genmol`] — deterministic drug-like molecule generation and the four
//!   compound libraries of the screening campaign;
//! * [`pocket`] — procedural binding pockets for the four SARS-CoV-2
//!   targets (protease1/2, spike1/2);
//! * [`featurize`] — voxel grids for the 3D-CNN and spatial graphs for the
//!   SG-CNN;
//! * [`mod@rmsd`] — pose-similarity metrics used by the docking filters;
//! * [`fingerprint`]/[`filter`]/[`screen`] — the ligand-only front-end:
//!   ECFP-style circular fingerprints, drug-likeness rule filters with
//!   per-rule rejection accounting, and the streaming
//!   `filter → fingerprint → score` library pipeline (see
//!   `docs/CHEMISTRY.md`).

#![warn(missing_docs)]

pub mod descriptors;
pub mod element;
pub mod featurize;
pub mod filter;
pub mod fingerprint;
pub mod genmol;
pub mod geom;
pub mod linnot;
pub mod mol;
pub mod pocket;
pub mod rmsd;
pub mod screen;

pub use descriptors::{fsp3, ring_count, tpsa_estimate, Descriptors};
pub use element::Element;
pub use featurize::{build_graph, voxelize, GraphConfig, MolGraph, VoxelConfig, NODE_FEATURES};
pub use filter::{Property, RejectionTally, Rule, RuleFilter, Verdict};
pub use fingerprint::{Fingerprint, FingerprintConfig};
pub use genmol::{generate_molecule, Compound, CompoundId, Library, MolGenConfig};
pub use geom::{Rotation, Vec3};
pub use linnot::{parse_linnot, same_graph, write_linnot, LinNotError};
pub use mol::{Atom, Bond, BondOrder, Molecule};
pub use pocket::{BindingPocket, TargetSite};
pub use rmsd::{centered_rmsd, rmsd};
pub use screen::{
    ligand_score, screen_library, screen_library_with, FunnelStats, RankedCompound, ScreenConfig,
    ScreenOutcome, ScreenRecord,
};
