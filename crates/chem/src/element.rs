//! Chemical elements and the per-element properties the pipeline needs:
//! van-der-Waals / covalent radii, masses, electronegativities and the
//! pharmacophore flags used by the Vina-like scoring function and the
//! voxel/graph featurizers.

use serde::{Deserialize, Serialize};

/// Heavy-atom elements occurring in drug-like molecules plus hydrogen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur.
    S,
    /// Phosphorus.
    P,
    /// Fluorine.
    F,
    /// Chlorine.
    Cl,
    /// Bromine.
    Br,
    /// Iodine.
    I,
}

impl Element {
    /// All supported elements.
    pub const ALL: [Element; 10] = [
        Element::H,
        Element::C,
        Element::N,
        Element::O,
        Element::S,
        Element::P,
        Element::F,
        Element::Cl,
        Element::Br,
        Element::I,
    ];

    /// Atomic number.
    pub fn atomic_number(self) -> u8 {
        match self {
            Element::H => 1,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::S => 16,
            Element::P => 15,
            Element::F => 9,
            Element::Cl => 17,
            Element::Br => 35,
            Element::I => 53,
        }
    }

    /// Atomic mass in Daltons (used for the PDBbind refined-set molecular
    /// weight cut at 1000 Da).
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
            Element::P => 30.974,
            Element::F => 18.998,
            Element::Cl => 35.45,
            Element::Br => 79.904,
            Element::I => 126.904,
        }
    }

    /// Van-der-Waals radius in Å (Bondi-like values).
    pub fn vdw_radius(self) -> f64 {
        match self {
            Element::H => 1.20,
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
            Element::P => 1.80,
            Element::F => 1.47,
            Element::Cl => 1.75,
            Element::Br => 1.85,
            Element::I => 1.98,
        }
    }

    /// Single-bond covalent radius in Å.
    pub fn covalent_radius(self) -> f64 {
        match self {
            Element::H => 0.31,
            Element::C => 0.76,
            Element::N => 0.71,
            Element::O => 0.66,
            Element::S => 1.05,
            Element::P => 1.07,
            Element::F => 0.57,
            Element::Cl => 1.02,
            Element::Br => 1.20,
            Element::I => 1.39,
        }
    }

    /// Pauling electronegativity (drives the Gasteiger-lite partial
    /// charges).
    pub fn electronegativity(self) -> f64 {
        match self {
            Element::H => 2.20,
            Element::C => 2.55,
            Element::N => 3.04,
            Element::O => 3.44,
            Element::S => 2.58,
            Element::P => 2.19,
            Element::F => 3.98,
            Element::Cl => 3.16,
            Element::Br => 2.96,
            Element::I => 2.66,
        }
    }

    /// Maximum number of covalent bonds formed in neutral molecules.
    pub fn max_valence(self) -> usize {
        match self {
            Element::H | Element::F | Element::Cl | Element::Br | Element::I => 1,
            Element::O => 2,
            Element::N | Element::P => 3,
            Element::C => 4,
            Element::S => 2,
        }
    }

    /// Carbon and sulfur surfaces are treated as hydrophobic, matching the
    /// Vina atom-typing convention.
    pub fn is_hydrophobic(self) -> bool {
        matches!(self, Element::C | Element::S)
    }

    /// Can accept a hydrogen bond.
    pub fn is_hbond_acceptor(self) -> bool {
        matches!(self, Element::N | Element::O | Element::F)
    }

    /// Can (when protonated) donate a hydrogen bond — we use the heavy-atom
    /// convention since generated molecules are implicit-hydrogen.
    pub fn is_hbond_donor(self) -> bool {
        matches!(self, Element::N | Element::O)
    }

    /// Halogen flag (one voxel channel groups all halogens).
    pub fn is_halogen(self) -> bool {
        matches!(self, Element::F | Element::Cl | Element::Br | Element::I)
    }

    /// Coarse element class used for featurization channels:
    /// C=0, N=1, O=2, S=3, P=4, halogen=5, H/other=6.
    pub fn channel_class(self) -> usize {
        match self {
            Element::C => 0,
            Element::N => 1,
            Element::O => 2,
            Element::S => 3,
            Element::P => 4,
            Element::F | Element::Cl | Element::Br | Element::I => 5,
            Element::H => 6,
        }
    }

    /// Number of distinct channel classes.
    pub const NUM_CLASSES: usize = 7;

    /// One-letter/two-letter symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
            Element::P => "P",
            Element::F => "F",
            Element::Cl => "Cl",
            Element::Br => "Br",
            Element::I => "I",
        }
    }

    /// Parses a symbol (case-sensitive, matching [`Element::symbol`]).
    pub fn from_symbol(s: &str) -> Option<Element> {
        Element::ALL.into_iter().find(|e| e.symbol() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("Xx"), None);
    }

    #[test]
    fn radii_ordering_is_physical() {
        // vdW radius is always larger than the covalent radius.
        for e in Element::ALL {
            assert!(e.vdw_radius() > e.covalent_radius(), "{e:?}");
        }
        // Iodine is the largest halogen.
        assert!(Element::I.vdw_radius() > Element::F.vdw_radius());
    }

    #[test]
    fn valences_match_chemistry() {
        assert_eq!(Element::C.max_valence(), 4);
        assert_eq!(Element::N.max_valence(), 3);
        assert_eq!(Element::O.max_valence(), 2);
        assert_eq!(Element::H.max_valence(), 1);
    }

    #[test]
    fn channel_classes_are_dense() {
        let mut seen = [false; Element::NUM_CLASSES];
        for e in Element::ALL {
            let c = e.channel_class();
            assert!(c < Element::NUM_CLASSES);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s), "every class used");
    }

    #[test]
    fn pharmacophore_flags() {
        assert!(Element::C.is_hydrophobic());
        assert!(!Element::O.is_hydrophobic());
        assert!(Element::O.is_hbond_acceptor());
        assert!(Element::N.is_hbond_donor());
        assert!(Element::Cl.is_halogen());
        assert!(!Element::C.is_halogen());
    }
}
