//! RMSD between conformers/poses of the same molecule.
//!
//! The paper's Figure 2 filters docked core-set complexes to those with a
//! pose within 1 Å RMSD of the crystal structure; poses here live in the
//! shared pocket frame so the plain (unaligned) RMSD is the physically
//! meaningful quantity, with a centroid-removed variant for shape-only
//! comparisons.

use crate::mol::Molecule;

/// Plain RMSD over matched atom indices (same frame, no alignment).
pub fn rmsd(a: &Molecule, b: &Molecule) -> f64 {
    assert_eq!(
        a.num_atoms(),
        b.num_atoms(),
        "RMSD requires equal atom counts: {} vs {}",
        a.num_atoms(),
        b.num_atoms()
    );
    if a.num_atoms() == 0 {
        return 0.0;
    }
    let s: f64 = a.atoms.iter().zip(&b.atoms).map(|(x, y)| x.pos.dist2(y.pos)).sum();
    (s / a.num_atoms() as f64).sqrt()
}

/// RMSD after removing the centroid translation (orientation-sensitive,
/// translation-invariant).
pub fn centered_rmsd(a: &Molecule, b: &Molecule) -> f64 {
    assert_eq!(a.num_atoms(), b.num_atoms(), "RMSD requires equal atom counts");
    if a.num_atoms() == 0 {
        return 0.0;
    }
    let ca = a.centroid();
    let cb = b.centroid();
    let s: f64 =
        a.atoms.iter().zip(&b.atoms).map(|(x, y)| x.pos.sub(ca).dist2(y.pos.sub(cb))).sum();
    (s / a.num_atoms() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::geom::{Rotation, Vec3};
    use crate::mol::Atom;

    fn mol3() -> Molecule {
        let mut m = Molecule::new("m");
        m.add_atom(Atom::new(Element::C, Vec3::new(0.0, 0.0, 0.0)));
        m.add_atom(Atom::new(Element::C, Vec3::new(1.5, 0.0, 0.0)));
        m.add_atom(Atom::new(Element::O, Vec3::new(1.5, 1.4, 0.0)));
        m
    }

    #[test]
    fn identical_conformers_have_zero_rmsd() {
        let m = mol3();
        assert_eq!(rmsd(&m, &m), 0.0);
        assert_eq!(centered_rmsd(&m, &m), 0.0);
    }

    #[test]
    fn translation_shows_in_rmsd_but_not_centered() {
        let a = mol3();
        let mut b = mol3();
        b.translate(Vec3::new(3.0, 4.0, 0.0));
        assert!((rmsd(&a, &b) - 5.0).abs() < 1e-12);
        assert!(centered_rmsd(&a, &b) < 1e-12);
    }

    #[test]
    fn rotation_shows_in_centered_rmsd() {
        let a = mol3();
        let mut b = mol3();
        b.rotate_about_centroid(&Rotation::about_axis(Vec3::new(0.0, 0.0, 1.0), 1.0));
        assert!(centered_rmsd(&a, &b) > 0.1);
    }

    #[test]
    fn rmsd_is_symmetric() {
        let a = mol3();
        let mut b = mol3();
        b.translate(Vec3::new(0.3, -0.2, 0.9));
        assert!((rmsd(&a, &b) - rmsd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal atom counts")]
    fn mismatched_sizes_panic() {
        let a = mol3();
        let mut b = mol3();
        b.add_atom(Atom::new(Element::N, Vec3::ZERO));
        rmsd(&a, &b);
    }
}
