//! LinNot — a SMILES-like linear notation for molecular graphs.
//!
//! The screening campaign needs a compact, human-readable serialization of
//! compound structures (the paper's pipeline passes SMILES between ZINC /
//! ChEMBL / Enamine, ligand preparation and the data portal). A full
//! SMILES implementation (aromaticity perception, stereo, tautomers) is a
//! project of its own; LinNot implements the structural core with the same
//! grammar shape:
//!
//! * atoms as element symbols (`C`, `N`, `Cl`, ...),
//! * `=` / `#` bond-order prefixes,
//! * parenthesised branches,
//! * single-digit ring-closure labels (`C1CCCCC1`), reusable after close.
//!
//! Writing walks a DFS spanning tree of the bond graph; parsing rebuilds
//! the graph. Coordinates are not encoded — a parsed molecule gets a fresh
//! conformer via [`crate::genmol::relax_conformer`]-style embedding, which
//! is how the lazily-materialized compound libraries behave too.

use crate::element::Element;
use crate::geom::Vec3;
use crate::mol::{Atom, BondOrder, Molecule};

/// Errors from parsing a LinNot string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinNotError {
    /// A character outside the LinNot grammar.
    UnexpectedChar {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character itself.
        ch: char,
    },
    /// A `(`/`)` without its partner.
    UnbalancedParen {
        /// Byte offset of the unmatched parenthesis.
        pos: usize,
    },
    /// An element symbol not in the supported set.
    UnknownElement {
        /// Byte offset of the symbol.
        pos: usize,
        /// The unrecognized symbol text.
        symbol: String,
    },
    /// A ring-closure label opened but never closed.
    DanglingRingBond {
        /// The unclosed ring label digit.
        label: u8,
    },
    /// A ring closure whose two ends are the same atom.
    SelfRingBond {
        /// Byte offset of the closing label.
        pos: usize,
    },
    /// A `=`/`#` prefix not followed by an atom or ring label.
    DanglingBondSymbol {
        /// Byte offset of the bond symbol.
        pos: usize,
    },
    /// A bond symbol with no preceding atom to bond from.
    BondWithoutAtom {
        /// Byte offset of the bond symbol.
        pos: usize,
    },
    /// The input was empty.
    Empty,
}

impl std::fmt::Display for LinNotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinNotError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at {pos}")
            }
            LinNotError::UnbalancedParen { pos } => write!(f, "unbalanced parenthesis at {pos}"),
            LinNotError::UnknownElement { pos, symbol } => {
                write!(f, "unknown element {symbol:?} at {pos}")
            }
            LinNotError::DanglingRingBond { label } => {
                write!(f, "ring bond {label} opened but never closed")
            }
            LinNotError::SelfRingBond { pos } => {
                write!(f, "ring label closes onto the same atom at {pos}")
            }
            LinNotError::DanglingBondSymbol { pos } => {
                write!(f, "bond symbol not followed by an atom or ring label at {pos}")
            }
            LinNotError::BondWithoutAtom { pos } => {
                write!(f, "bond symbol with no preceding atom at {pos}")
            }
            LinNotError::Empty => write!(f, "empty notation"),
        }
    }
}

impl std::error::Error for LinNotError {}

fn bond_char(order: BondOrder) -> Option<char> {
    match order {
        BondOrder::Single => None,
        BondOrder::Double => Some('='),
        BondOrder::Triple => Some('#'),
    }
}

/// Serializes a connected molecule to LinNot.
///
/// The output is deterministic (DFS from atom 0, neighbours in index
/// order) so equal graphs with equal atom numbering produce equal strings.
pub fn write_linnot(mol: &Molecule) -> String {
    if mol.atoms.is_empty() {
        return String::new();
    }
    assert!(mol.is_connected(), "LinNot requires a connected molecule");

    // Adjacency with bond orders.
    let mut adj: Vec<Vec<(usize, BondOrder)>> = vec![Vec::new(); mol.num_atoms()];
    for b in &mol.bonds {
        adj[b.a].push((b.b, b.order));
        adj[b.b].push((b.a, b.order));
    }
    for l in &mut adj {
        l.sort_by_key(|&(n, _)| n);
    }

    // DFS spanning tree; non-tree edges become ring closures.
    let n = mol.num_atoms();
    let mut visited = vec![false; n];
    let mut ring_labels: Vec<Vec<(u8, BondOrder)>> = vec![Vec::new(); n];
    let mut used_labels = [false; 10];
    let mut tree_children: Vec<Vec<(usize, BondOrder)>> = vec![Vec::new(); n];

    // Iterative DFS to mark tree edges and ring closures.
    let mut stack = vec![(0usize, usize::MAX)];
    visited[0] = true;
    let mut closure_pairs: Vec<(usize, usize, BondOrder)> = Vec::new();
    while let Some((u, parent)) = stack.pop() {
        // Push children in reverse so lower-index neighbours are visited
        // first (stable output).
        for &(v, ord) in adj[u].iter().rev() {
            if v == parent {
                continue;
            }
            if visited[v] {
                // Ring closure; record once (when u > v in visit order the
                // pair was already added from the other side).
                if !closure_pairs.iter().any(|&(a, b, _)| (a == v && b == u) || (a == u && b == v))
                {
                    closure_pairs.push((u, v, ord));
                }
            } else {
                visited[v] = true;
                tree_children[u].push((v, ord));
                stack.push((v, u));
            }
        }
    }
    // tree_children were collected in reversed order; restore index order.
    for c in &mut tree_children {
        c.sort_by_key(|&(v, _)| v);
    }

    // Assign ring labels (digits 0-9, reusable — enough for drug-like
    // molecules whose simultaneous open rings rarely exceed a handful).
    for &(a, b, ord) in &closure_pairs {
        let label = (0..10u8)
            .find(|&l| !used_labels[l as usize])
            .expect("more than 10 simultaneously open rings");
        used_labels[label as usize] = true;
        ring_labels[a].push((label, ord));
        ring_labels[b].push((label, ord));
        // Labels stay "used" for the whole write for simplicity; with ≤10
        // rings in generated compounds this never exhausts.
    }

    // Emit DFS recursively (explicit stack to avoid recursion depth).
    let mut out = String::new();
    emit(mol, 0, &tree_children, &ring_labels, &mut out);
    out
}

fn emit(
    mol: &Molecule,
    u: usize,
    children: &[Vec<(usize, BondOrder)>],
    ring_labels: &[Vec<(u8, BondOrder)>],
    out: &mut String,
) {
    out.push_str(mol.atoms[u].element.symbol());
    for &(label, ord) in &ring_labels[u] {
        if let Some(c) = bond_char(ord) {
            out.push(c);
        }
        out.push(char::from(b'0' + label));
    }
    let kids = &children[u];
    for (i, &(v, ord)) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        if !last {
            out.push('(');
        }
        if let Some(c) = bond_char(ord) {
            out.push(c);
        }
        emit(mol, v, children, ring_labels, out);
        if !last {
            out.push(')');
        }
    }
}

/// Parses LinNot into a molecule with placeholder coordinates (a rough
/// chain embedding; call `relax_conformer` for a physical conformer).
pub fn parse_linnot(s: &str) -> Result<Molecule, LinNotError> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Err(LinNotError::Empty);
    }
    let mut mol = Molecule::new("linnot");
    let mut prev: Option<usize> = None;
    let mut pending_bond = BondOrder::Single;
    let mut branch_stack: Vec<usize> = Vec::new();
    let mut open_rings: std::collections::HashMap<u8, (usize, BondOrder)> =
        std::collections::HashMap::new();
    let mut i = 0usize;
    let mut placed = 0usize;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' => {
                let Some(p) = prev else {
                    return Err(LinNotError::BondWithoutAtom { pos: i });
                };
                branch_stack.push(p);
                i += 1;
            }
            ')' => {
                if pending_bond != BondOrder::Single {
                    return Err(LinNotError::DanglingBondSymbol { pos: i });
                }
                prev = Some(branch_stack.pop().ok_or(LinNotError::UnbalancedParen { pos: i })?);
                i += 1;
            }
            '=' => {
                pending_bond = BondOrder::Double;
                i += 1;
            }
            '#' => {
                pending_bond = BondOrder::Triple;
                i += 1;
            }
            '0'..='9' => {
                let label = c as u8 - b'0';
                let Some(p) = prev else {
                    return Err(LinNotError::BondWithoutAtom { pos: i });
                };
                match open_rings.remove(&label) {
                    Some((other, _)) if other == p => {
                        return Err(LinNotError::SelfRingBond { pos: i });
                    }
                    Some((other, ord)) => {
                        // Closing: the order was fixed at opening (or by a
                        // bond char just before either digit).
                        let order =
                            if pending_bond != BondOrder::Single { pending_bond } else { ord };
                        mol.add_bond(other, p, order);
                    }
                    None => {
                        open_rings.insert(label, (p, pending_bond));
                    }
                }
                pending_bond = BondOrder::Single;
                i += 1;
            }
            'A'..='Z' => {
                // Greedy two-letter symbol match (Cl, Br), else one letter.
                let mut symbol = c.to_string();
                if i + 1 < chars.len() && chars[i + 1].is_ascii_lowercase() {
                    symbol.push(chars[i + 1]);
                }
                let (elem, advance) = match Element::from_symbol(&symbol) {
                    Some(e) => (e, symbol.len()),
                    None => match Element::from_symbol(&symbol[..1]) {
                        Some(e) => (e, 1),
                        None => {
                            return Err(LinNotError::UnknownElement { pos: i, symbol });
                        }
                    },
                };
                // Placeholder zig-zag coordinates.
                let pos = Vec3::new(
                    placed as f64 * 1.4,
                    if placed.is_multiple_of(2) { 0.0 } else { 0.9 },
                    (placed % 3) as f64 * 0.3,
                );
                placed += 1;
                let idx = mol.add_atom(Atom::new(elem, pos));
                if let Some(p) = prev {
                    mol.add_bond(p, idx, pending_bond);
                }
                pending_bond = BondOrder::Single;
                prev = Some(idx);
                i += advance;
            }
            _ => return Err(LinNotError::UnexpectedChar { pos: i, ch: c }),
        }
    }
    if !branch_stack.is_empty() {
        return Err(LinNotError::UnbalancedParen { pos: chars.len() });
    }
    if pending_bond != BondOrder::Single {
        return Err(LinNotError::DanglingBondSymbol { pos: chars.len() });
    }
    if let Some((&label, _)) = open_rings.iter().next() {
        return Err(LinNotError::DanglingRingBond { label });
    }
    mol.assign_partial_charges();
    Ok(mol)
}

/// Renumbering-robust structural comparison: element multiset, typed bond
/// multiset and per-element degree sequences must all match. This is a
/// strong necessary condition for graph isomorphism (the writer renumbers
/// atoms into DFS order, so index-wise comparison would be wrong), and in
/// practice it separates every distinct generated compound.
pub fn same_graph(a: &Molecule, b: &Molecule) -> bool {
    if a.num_atoms() != b.num_atoms() || a.bonds.len() != b.bonds.len() {
        return false;
    }
    /// (sorted atomic numbers, sorted typed bonds, sorted (element, degree)).
    type Signature = (Vec<u8>, Vec<(u8, u8, usize)>, Vec<(u8, usize)>);
    fn signature(m: &Molecule) -> Signature {
        let mut elems: Vec<u8> = m.atoms.iter().map(|x| x.element.atomic_number()).collect();
        elems.sort_unstable();
        let mut bonds: Vec<(u8, u8, usize)> = m
            .bonds
            .iter()
            .map(|bd| {
                let x = m.atoms[bd.a].element.atomic_number();
                let y = m.atoms[bd.b].element.atomic_number();
                (x.min(y), x.max(y), bd.order.valence())
            })
            .collect();
        bonds.sort_unstable();
        let degrees = m.degrees();
        let mut deg: Vec<(u8, usize)> =
            m.atoms.iter().zip(&degrees).map(|(at, &d)| (at.element.atomic_number(), d)).collect();
        deg.sort_unstable();
        (elems, bonds, deg)
    }
    signature(a) == signature(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmol::{generate_molecule, MolGenConfig};

    #[test]
    fn writes_simple_chain() {
        let mut m = Molecule::new("propanol-ish");
        let c1 = m.add_atom(Atom::new(Element::C, Vec3::ZERO));
        let c2 = m.add_atom(Atom::new(Element::C, Vec3::new(1.5, 0.0, 0.0)));
        let o = m.add_atom(Atom::new(Element::O, Vec3::new(3.0, 0.0, 0.0)));
        m.add_bond(c1, c2, BondOrder::Single);
        m.add_bond(c2, o, BondOrder::Single);
        assert_eq!(write_linnot(&m), "CCO");
    }

    #[test]
    fn writes_branch_and_double_bond() {
        // C(=O)C : acetaldehyde-like fragment
        let mut m = Molecule::new("m");
        let c1 = m.add_atom(Atom::new(Element::C, Vec3::ZERO));
        let o = m.add_atom(Atom::new(Element::O, Vec3::new(0.0, 1.2, 0.0)));
        let c2 = m.add_atom(Atom::new(Element::C, Vec3::new(1.5, 0.0, 0.0)));
        m.add_bond(c1, o, BondOrder::Double);
        m.add_bond(c1, c2, BondOrder::Single);
        assert_eq!(write_linnot(&m), "C(=O)C");
    }

    #[test]
    fn ring_round_trip() {
        // Cyclohexane: C0CCCCC0 (label digits start at 0 here).
        let mut m = Molecule::new("ring");
        for k in 0..6 {
            m.add_atom(Atom::new(Element::C, Vec3::new(k as f64, 0.0, 0.0)));
        }
        for k in 1..6 {
            m.add_bond(k - 1, k, BondOrder::Single);
        }
        m.add_bond(0, 5, BondOrder::Single);
        let s = write_linnot(&m);
        let back = parse_linnot(&s).unwrap();
        assert!(same_graph(&m, &back), "{s}");
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        assert!(matches!(parse_linnot(""), Err(LinNotError::Empty)));
        assert!(matches!(parse_linnot("C)C"), Err(LinNotError::UnbalancedParen { .. })));
        assert!(matches!(parse_linnot("C(C"), Err(LinNotError::UnbalancedParen { .. })));
        assert!(matches!(parse_linnot("Xx"), Err(LinNotError::UnknownElement { .. })));
        assert!(matches!(parse_linnot("C1CC"), Err(LinNotError::DanglingRingBond { .. })));
        assert!(matches!(parse_linnot("(CC)"), Err(LinNotError::BondWithoutAtom { .. })));
        assert!(matches!(parse_linnot("C$"), Err(LinNotError::UnexpectedChar { .. })));
        assert!(matches!(parse_linnot("C00"), Err(LinNotError::SelfRingBond { .. })));
        assert!(matches!(parse_linnot("C(=)O"), Err(LinNotError::DanglingBondSymbol { .. })));
        assert!(matches!(parse_linnot("CC="), Err(LinNotError::DanglingBondSymbol { .. })));
    }

    #[test]
    fn two_letter_elements_parse() {
        let ok = parse_linnot("C(Cl)(Br)I").unwrap();
        assert_eq!(ok.num_atoms(), 4);
        assert_eq!(ok.atoms[1].element, Element::Cl);
        assert_eq!(ok.atoms[2].element, Element::Br);
        assert_eq!(ok.atoms[3].element, Element::I);
    }

    #[test]
    fn generated_molecules_round_trip() {
        for seed in 0..30 {
            let m = generate_molecule(&MolGenConfig::default(), "m", seed);
            let s = write_linnot(&m);
            let back = parse_linnot(&s).unwrap_or_else(|e| panic!("seed {seed}: {e} in {s}"));
            assert!(
                same_graph(&m, &back),
                "seed {seed}: graph mismatch for {s} ({} vs {} bonds)",
                m.bonds.len(),
                back.bonds.len()
            );
        }
    }

    #[test]
    fn notation_is_deterministic() {
        let m = generate_molecule(&MolGenConfig::default(), "m", 7);
        assert_eq!(write_linnot(&m), write_linnot(&m));
    }
}
