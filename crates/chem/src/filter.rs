//! Configurable drug-likeness rule filters with per-rule rejection
//! accounting.
//!
//! A [`RuleFilter`] is a named table of [`Rule`]s — bounds over
//! [`Descriptors`] properties — plus a violation budget (Lipinski's
//! classic gate tolerates one violation; the ZINC druglike gate tolerates
//! none). Applying a filter yields a [`Verdict`] carrying a violation
//! bitmask, and a [`RejectionTally`] accumulates which rules rejected how
//! many compounds — the outermost ring of the screening funnel documented
//! in `docs/CHEMISTRY.md`.
//!
//! Rules are data, not closures, so filters serialize into campaign
//! configs and the per-rule accounting stays meaningful across processes.

use crate::descriptors::Descriptors;
use serde::{Deserialize, Serialize};

/// A descriptor a rule can bound. Values are read as `f64` so integer
/// counts and continuous properties share one rule representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Property {
    /// Molecular weight (Da).
    MolecularWeight,
    /// Crude cLogP-style lipophilicity.
    LogP,
    /// Hydrogen-bond donors (heavy-atom convention).
    HbondDonors,
    /// Hydrogen-bond acceptors.
    HbondAcceptors,
    /// Ertl-style topological polar surface area (Å²).
    Tpsa,
    /// Rotatable bonds (Vina torsion convention).
    RotatableBonds,
    /// Strict rotatable bonds (amide-excluding ZINC convention).
    RotatableBondsStrict,
    /// Heavy-atom bonds that are not strict rotors.
    RigidBonds,
    /// Independent rings (cyclomatic number).
    RingCount,
    /// Non-hydrogen atoms.
    HeavyAtoms,
    /// Carbon atoms.
    Carbons,
    /// Non-carbon heavy atoms per carbon (`+∞` when carbon-free).
    HeteroCarbonRatio,
    /// Fraction of saturated carbons.
    Fsp3,
}

impl Property {
    /// Short identifier used in metric names and reports.
    pub fn tag(self) -> &'static str {
        match self {
            Property::MolecularWeight => "mw",
            Property::LogP => "logp",
            Property::HbondDonors => "hbd",
            Property::HbondAcceptors => "hba",
            Property::Tpsa => "tpsa",
            Property::RotatableBonds => "rotb",
            Property::RotatableBondsStrict => "rotb_strict",
            Property::RigidBonds => "rigid",
            Property::RingCount => "rings",
            Property::HeavyAtoms => "heavy",
            Property::Carbons => "carbons",
            Property::HeteroCarbonRatio => "hetero_ratio",
            Property::Fsp3 => "fsp3",
        }
    }

    /// Reads this property out of a descriptor bundle.
    pub fn extract(self, d: &Descriptors) -> f64 {
        match self {
            Property::MolecularWeight => d.molecular_weight,
            Property::LogP => d.logp,
            Property::HbondDonors => d.hbond_donors as f64,
            Property::HbondAcceptors => d.hbond_acceptors as f64,
            Property::Tpsa => d.tpsa,
            Property::RotatableBonds => d.rotatable_bonds as f64,
            Property::RotatableBondsStrict => d.rotatable_bonds_strict as f64,
            Property::RigidBonds => d.rigid_bonds as f64,
            Property::RingCount => d.ring_count as f64,
            Property::HeavyAtoms => d.heavy_atoms as f64,
            Property::Carbons => d.carbons as f64,
            Property::HeteroCarbonRatio => d.hetero_carbon_ratio(),
            Property::Fsp3 => d.fsp3,
        }
    }
}

/// One inclusive bound over a property: a compound satisfies the rule
/// when `min ≤ value ≤ max` (absent bounds are unbounded on that side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The property this rule bounds.
    pub property: Property,
    /// Inclusive lower bound, if any.
    pub min: Option<f64>,
    /// Inclusive upper bound, if any.
    pub max: Option<f64>,
}

impl Rule {
    /// `property ≤ max`.
    pub fn at_most(property: Property, max: f64) -> Rule {
        Rule { property, min: None, max: Some(max) }
    }

    /// `property ≥ min`.
    pub fn at_least(property: Property, min: f64) -> Rule {
        Rule { property, min: Some(min), max: None }
    }

    /// `min ≤ property ≤ max`.
    pub fn between(property: Property, min: f64, max: f64) -> Rule {
        Rule { property, min: Some(min), max: Some(max) }
    }

    /// True when the descriptor bundle satisfies the bound. `NaN` never
    /// satisfies a bounded rule.
    pub fn check(&self, d: &Descriptors) -> bool {
        let v = self.property.extract(d);
        self.min.is_none_or(|m| v >= m) && self.max.is_none_or(|m| v <= m)
    }

    /// Human/metric label, e.g. `mw<=500` or `60<=mw<=600`.
    pub fn label(&self) -> String {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => format!("{lo}<={}<={hi}", self.property.tag()),
            (Some(lo), None) => format!("{}>={lo}", self.property.tag()),
            (None, Some(hi)) => format!("{}<={hi}", self.property.tag()),
            (None, None) => format!("{}:any", self.property.tag()),
        }
    }
}

/// The outcome of applying one filter to one compound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// True when the compound passed (violations within the budget).
    pub passed: bool,
    /// Bit `i` set iff rule `i` was violated (filters are capped at 64
    /// rules so the mask stays a single word).
    pub violations: u64,
}

impl Verdict {
    /// Number of violated rules.
    pub fn num_violations(&self) -> u32 {
        self.violations.count_ones()
    }
}

/// A named, ordered table of rules plus a violation budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleFilter {
    /// Filter name (used in reports and metric names).
    pub name: String,
    /// The rule table; capped at 64 rules (violation masks are `u64`).
    pub rules: Vec<Rule>,
    /// Maximum violated rules a compound may carry and still pass
    /// (0 = strict conjunction, 1 = the classic Lipinski allowance).
    pub max_violations: u32,
}

impl RuleFilter {
    /// Builds a custom filter; panics on more than 64 rules.
    pub fn new(name: impl Into<String>, rules: Vec<Rule>, max_violations: u32) -> RuleFilter {
        assert!(rules.len() <= 64, "violation masks are u64: at most 64 rules per filter");
        RuleFilter { name: name.into(), rules, max_violations }
    }

    /// Lipinski's rule of five with the classic one-violation allowance:
    /// MW ≤ 500, logP ≤ 5, HBD ≤ 5, HBA ≤ 10.
    pub fn lipinski() -> RuleFilter {
        RuleFilter::new(
            "lipinski",
            vec![
                Rule::at_most(Property::MolecularWeight, 500.0),
                Rule::at_most(Property::LogP, 5.0),
                Rule::at_most(Property::HbondDonors, 5.0),
                Rule::at_most(Property::HbondAcceptors, 10.0),
            ],
            1,
        )
    }

    /// Veber's oral-bioavailability gate: rotatable bonds ≤ 10 and
    /// TPSA ≤ 140 Å², no violation budget.
    pub fn veber() -> RuleFilter {
        RuleFilter::new(
            "veber",
            vec![
                Rule::at_most(Property::RotatableBonds, 10.0),
                Rule::at_most(Property::Tpsa, 140.0),
            ],
            0,
        )
    }

    /// The ZINC druglike property gate (Irwin & Shoichet), physico-
    /// chemical subset: MW ∈ [60, 600], logP ∈ [-4, 6], HBA ≤ 11,
    /// HBD ≤ 6, TPSA ≤ 150, strict rotatable bonds ≤ 12, rigid
    /// bonds ≤ 50, rings ≤ 7, carbons ≥ 3, hetero/carbon ratio ≤ 2.
    /// The SMARTS-based rules of the original filter and the
    /// formal-charge bounds are not representable here; the deviations
    /// are tabulated in `docs/CHEMISTRY.md`.
    pub fn zinc_druglike() -> RuleFilter {
        RuleFilter::new(
            "zinc_druglike",
            vec![
                Rule::between(Property::MolecularWeight, 60.0, 600.0),
                Rule::between(Property::LogP, -4.0, 6.0),
                Rule::at_most(Property::HbondAcceptors, 11.0),
                Rule::at_most(Property::HbondDonors, 6.0),
                Rule::at_most(Property::Tpsa, 150.0),
                Rule::at_most(Property::RotatableBondsStrict, 12.0),
                Rule::at_most(Property::RigidBonds, 50.0),
                Rule::at_most(Property::RingCount, 7.0),
                Rule::at_least(Property::Carbons, 3.0),
                Rule::at_most(Property::HeteroCarbonRatio, 2.0),
            ],
            0,
        )
    }

    /// Applies the filter to one descriptor bundle.
    pub fn apply(&self, d: &Descriptors) -> Verdict {
        let mut violations = 0u64;
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.check(d) {
                violations |= 1 << i;
            }
        }
        Verdict { passed: violations.count_ones() <= self.max_violations, violations }
    }
}

/// Per-rule rejection accounting for one filter over a compound stream.
///
/// `per_rule[i]` counts compounds that violated rule `i` (a compound can
/// land in several buckets); `rejected` counts compounds whose violation
/// count exceeded the budget. Tallies from independently processed chunks
/// [`merge`](RejectionTally::merge) associatively, so pooled pipelines
/// produce the same tally as serial ones.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionTally {
    /// Compounds evaluated.
    pub evaluated: u64,
    /// Compounds that passed the filter.
    pub passed: u64,
    /// Compounds rejected (violations above the budget).
    pub rejected: u64,
    /// Violation count per rule, aligned with [`RuleFilter::rules`].
    pub per_rule: Vec<u64>,
}

impl RejectionTally {
    /// An empty tally shaped for `filter`.
    pub fn for_filter(filter: &RuleFilter) -> RejectionTally {
        RejectionTally {
            evaluated: 0,
            passed: 0,
            rejected: 0,
            per_rule: vec![0; filter.rules.len()],
        }
    }

    /// Records one verdict.
    pub fn record(&mut self, verdict: &Verdict) {
        self.evaluated += 1;
        if verdict.passed {
            self.passed += 1;
        } else {
            self.rejected += 1;
        }
        let mut mask = verdict.violations;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            self.per_rule[i] += 1;
            mask &= mask - 1;
        }
    }

    /// Folds another tally (e.g. from a parallel chunk) into this one.
    pub fn merge(&mut self, other: &RejectionTally) {
        assert_eq!(self.per_rule.len(), other.per_rule.len(), "tallies from different filters");
        self.evaluated += other.evaluated;
        self.passed += other.passed;
        self.rejected += other.rejected;
        for (a, b) in self.per_rule.iter_mut().zip(&other.per_rule) {
            *a += b;
        }
    }

    /// passed / evaluated, 0 when nothing was evaluated.
    pub fn pass_rate(&self) -> f64 {
        dftrace::rate::mean(self.passed as f64, self.evaluated as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmol::{Compound, Library};

    fn descriptors(index: u64) -> Descriptors {
        Descriptors::compute(&Compound::materialize(Library::Chembl, index, 5).mol)
    }

    #[test]
    fn lipinski_allows_one_violation() {
        let f = RuleFilter::lipinski();
        let mut d = descriptors(0);
        d.molecular_weight = 550.0; // one violation
        d.logp = 2.0;
        d.hbond_donors = 2;
        d.hbond_acceptors = 4;
        let v = f.apply(&d);
        assert!(v.passed);
        assert_eq!(v.num_violations(), 1);
        d.logp = 9.0; // second violation
        assert!(!f.apply(&d).passed);
    }

    #[test]
    fn verdict_masks_name_the_violated_rules() {
        let f = RuleFilter::zinc_druglike();
        let mut d = descriptors(1);
        d.molecular_weight = 2_000.0;
        d.carbons = 0;
        let v = f.apply(&d);
        assert!(!v.passed);
        assert!(v.violations & 1 != 0, "rule 0 is the MW range");
        let carbon_rule =
            f.rules.iter().position(|r| r.property == Property::Carbons).expect("carbon rule");
        assert!(v.violations >> carbon_rule & 1 == 1);
        // Carbon-free: the hetero ratio rule (+inf) must also fire, not
        // panic.
        let ratio_rule = f
            .rules
            .iter()
            .position(|r| r.property == Property::HeteroCarbonRatio)
            .expect("ratio rule");
        assert!(v.violations >> ratio_rule & 1 == 1);
    }

    #[test]
    fn zero_heavy_atom_molecules_are_rejected_not_crashed() {
        let d = Descriptors::compute(&crate::mol::Molecule::new("void"));
        let v = RuleFilter::zinc_druglike().apply(&d);
        assert!(!v.passed, "a structureless input must fail the druglike gate");
    }

    #[test]
    fn tally_accounts_per_rule_and_merges() {
        let f = RuleFilter::zinc_druglike();
        let mut serial = RejectionTally::for_filter(&f);
        let mut left = RejectionTally::for_filter(&f);
        let mut right = RejectionTally::for_filter(&f);
        for i in 0..40u64 {
            let v = f.apply(&descriptors(i));
            serial.record(&v);
            if i < 20 { &mut left } else { &mut right }.record(&v);
        }
        left.merge(&right);
        assert_eq!(serial, left, "chunked tallies must merge to the serial tally");
        assert_eq!(serial.evaluated, 40);
        assert_eq!(serial.passed + serial.rejected, 40);
        assert_eq!(
            serial.per_rule.len(),
            f.rules.len(),
            "tally rows stay aligned with the rule table"
        );
    }

    #[test]
    fn rule_labels_are_readable() {
        assert_eq!(Rule::at_most(Property::LogP, 5.0).label(), "logp<=5");
        assert_eq!(Rule::between(Property::MolecularWeight, 60.0, 600.0).label(), "60<=mw<=600");
        assert_eq!(Rule::at_least(Property::Carbons, 3.0).label(), "carbons>=3");
    }

    #[test]
    fn filters_serialize_round_trip() {
        let f = RuleFilter::zinc_druglike();
        let json = serde_json::to_string(&f).expect("serialize");
        let back: RuleFilter = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(f.name, back.name);
        assert_eq!(f.rules, back.rules);
    }

    #[test]
    #[should_panic(expected = "at most 64 rules")]
    fn oversized_rule_tables_are_rejected() {
        let rules = vec![Rule::at_most(Property::LogP, 5.0); 65];
        RuleFilter::new("big", rules, 0);
    }
}
