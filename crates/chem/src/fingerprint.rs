//! ECFP-style circular fingerprints for ligand-only screening.
//!
//! The fingerprint is a folded bitset over iterated atom-environment
//! hashes, in the spirit of extended-connectivity fingerprints (Rogers &
//! Hahn 2010) as used by the ligand-based DNN screen of arXiv:2004.00979:
//!
//! 1. every heavy atom gets an initial **invariant** hashed from its
//!    element, heavy-atom degree, consumed valence, attached explicit
//!    hydrogens, ring membership and halogen flag;
//! 2. for each radius round, an atom's invariant is re-hashed together
//!    with the (bond-order, neighbour-invariant) pairs of its heavy
//!    neighbours, sorted so the hash is independent of bond insertion
//!    order;
//! 3. every invariant from every round sets bit `invariant % bits` in a
//!    folded bitset stored as little-endian `u64` words.
//!
//! Everything is integer arithmetic over a fixed 64-bit FNV-1a hash, so a
//! fingerprint is a pure function of the bond graph: bit-identical across
//! platforms, thread counts and runs. Differences vs. RDKit's Morgan
//! fingerprints (no duplicate-environment deduplication, no chirality,
//! heavy-atom hydrogen convention) are documented in `docs/CHEMISTRY.md`.

use crate::element::Element;
use crate::mol::Molecule;
use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a running hash, byte by byte.
fn fnv_mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a slice of `u64` values with FNV-1a.
fn fnv_hash(values: &[u64]) -> u64 {
    values.iter().fold(FNV_OFFSET, |h, &v| fnv_mix(h, v))
}

/// Tunables of the circular fingerprint.
///
/// `radius` counts neighbourhood-expansion rounds (radius 2 hashes
/// environments up to 2 bonds away, the ECFP4 convention); `bits` is the
/// folded width and must be a non-zero multiple of 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FingerprintConfig {
    /// Neighbourhood-expansion rounds (ECFP diameter = 2 × radius).
    pub radius: usize,
    /// Folded width in bits; must be a non-zero multiple of 64.
    pub bits: usize,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        // ECFP4-equivalent radius at the common 2048-bit fold.
        FingerprintConfig { radius: 2, bits: 2048 }
    }
}

impl FingerprintConfig {
    /// Panics unless the configuration is usable (see field docs).
    pub fn validate(&self) {
        assert!(
            self.bits > 0 && self.bits.is_multiple_of(64),
            "bits must be a non-zero multiple of 64"
        );
        assert!(self.radius <= 16, "radius {} is unreasonably large", self.radius);
    }
}

/// A folded circular fingerprint: `bits` bits packed into `u64` words
/// (bit `i` lives at word `i / 64`, bit `i % 64`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    bits: usize,
    words: Vec<u64>,
}

impl Fingerprint {
    /// The all-zero fingerprint of the given width.
    pub fn empty(bits: usize) -> Fingerprint {
        assert!(bits > 0 && bits.is_multiple_of(64), "bits must be a non-zero multiple of 64");
        Fingerprint { bits, words: vec![0; bits / 64] }
    }

    /// Computes the circular fingerprint of a molecule's bond graph.
    ///
    /// Hydrogen atoms never become environment centres: they fold into
    /// their heavy neighbour's invariant as an explicit-H count, so a
    /// molecule reads the same whether its hydrogens are implicit (the
    /// generator convention) or explicit (hand-built test molecules).
    pub fn compute(cfg: &FingerprintConfig, mol: &Molecule) -> Fingerprint {
        cfg.validate();
        let mut fp = Fingerprint::empty(cfg.bits);
        let n = mol.num_atoms();
        if n == 0 {
            return fp;
        }

        // Heavy-only adjacency with bond orders, plus per-atom explicit-H
        // counts and ring membership (an atom is in a ring iff one of its
        // bonds is not a bridge).
        let bridges = mol.bridge_bonds();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut h_count = vec![0u64; n];
        let mut in_ring = vec![false; n];
        for (bi, b) in mol.bonds.iter().enumerate() {
            let (ea, eb) = (mol.atoms[b.a].element, mol.atoms[b.b].element);
            if ea == Element::H {
                h_count[b.b] += 1;
            } else if eb == Element::H {
                h_count[b.a] += 1;
            } else {
                adj[b.a].push((b.b, b.order.valence() as u64));
                adj[b.b].push((b.a, b.order.valence() as u64));
                if !bridges[bi] {
                    in_ring[b.a] = true;
                    in_ring[b.b] = true;
                }
            }
        }

        // Round-0 invariants: the atom's own typed environment.
        let used_valence = mol.used_valence();
        let mut inv: Vec<u64> = (0..n)
            .map(|i| {
                let e = mol.atoms[i].element;
                fnv_hash(&[
                    e.atomic_number() as u64,
                    adj[i].len() as u64,
                    used_valence[i] as u64,
                    h_count[i],
                    in_ring[i] as u64,
                    e.is_halogen() as u64,
                ])
            })
            .collect();
        for (i, &v) in inv.iter().enumerate() {
            if mol.atoms[i].element != Element::H {
                fp.set_bit((v % cfg.bits as u64) as usize);
            }
        }

        // Neighbourhood-expansion rounds.
        let mut scratch: Vec<(u64, u64)> = Vec::new();
        for round in 1..=cfg.radius {
            let mut next = inv.clone();
            for i in 0..n {
                if mol.atoms[i].element == Element::H {
                    continue;
                }
                scratch.clear();
                scratch.extend(adj[i].iter().map(|&(j, order)| (order, inv[j])));
                // Sort so the environment hash is independent of the order
                // bonds were added to the molecule.
                scratch.sort_unstable();
                let mut h = fnv_mix(fnv_mix(FNV_OFFSET, round as u64), inv[i]);
                for &(order, nb) in &scratch {
                    h = fnv_mix(fnv_mix(h, order), nb);
                }
                next[i] = h;
                fp.set_bit((h % cfg.bits as u64) as usize);
            }
            inv = next;
        }
        fp
    }

    /// Width of the fingerprint in bits.
    pub fn num_bits(&self) -> usize {
        self.bits
    }

    /// The packed little-endian words backing the bitset.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets one bit.
    fn set_bit(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads one bit.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range for {}-bit fingerprint", self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of set bits (0 when the fingerprint is empty).
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.bits as f64
    }

    /// Tanimoto (Jaccard) similarity: |a ∧ b| / |a ∨ b|, in `[0, 1]`.
    ///
    /// Two all-zero fingerprints compare as 0 (the RDKit convention for
    /// empty bit vectors). Panics when the widths differ.
    pub fn tanimoto(&self, other: &Fingerprint) -> f64 {
        assert_eq!(self.bits, other.bits, "fingerprint widths differ");
        let mut inter = 0u32;
        let mut union = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            inter += (a & b).count_ones();
            union += (a | b).count_ones();
        }
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Appends a canonical little-endian byte encoding (width, then words)
    /// to `out`, for content digests and bit-identity checks.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.bits as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmol::{Compound, Library};
    use crate::geom::Vec3;
    use crate::mol::{Atom, BondOrder};

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new("chain");
        for i in 0..n {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 0.0, 0.0)));
        }
        for i in 1..n {
            m.add_bond(i - 1, i, BondOrder::Single);
        }
        m
    }

    #[test]
    fn deterministic_and_conformer_independent() {
        let cfg = FingerprintConfig::default();
        let mut a = Compound::materialize(Library::Chembl, 3, 7).mol;
        let fa = Fingerprint::compute(&cfg, &a);
        assert_eq!(fa, Fingerprint::compute(&cfg, &a));
        // The fingerprint reads the bond graph, not the conformer.
        a.translate(Vec3::new(5.0, -2.0, 1.0));
        assert_eq!(fa, Fingerprint::compute(&cfg, &a));
    }

    #[test]
    fn different_graphs_differ() {
        let cfg = FingerprintConfig::default();
        let a = Fingerprint::compute(&cfg, &chain(6));
        let mut ring = chain(6);
        ring.add_bond(0, 5, BondOrder::Single);
        let b = Fingerprint::compute(&cfg, &ring);
        assert_ne!(a, b, "ring closure must change the fingerprint");
    }

    #[test]
    fn self_similarity_is_one_and_empty_is_zero() {
        let cfg = FingerprintConfig::default();
        let f = Fingerprint::compute(&cfg, &chain(8));
        assert_eq!(f.tanimoto(&f), 1.0);
        let empty = Fingerprint::empty(cfg.bits);
        assert_eq!(empty.tanimoto(&empty), 0.0, "empty vs empty is 0 by convention");
        assert_eq!(f.tanimoto(&empty), 0.0);
    }

    #[test]
    fn similar_molecules_score_higher_than_dissimilar() {
        let cfg = FingerprintConfig::default();
        let base = Fingerprint::compute(&cfg, &chain(12));
        let close = Fingerprint::compute(&cfg, &chain(13));
        let mut polar = chain(12);
        for i in (0..12).step_by(2) {
            polar.atoms[i].element = Element::O;
        }
        let far = Fingerprint::compute(&cfg, &polar);
        assert!(base.tanimoto(&close) > base.tanimoto(&far));
    }

    #[test]
    fn explicit_hydrogens_fold_into_heavy_invariants() {
        let cfg = FingerprintConfig::default();
        let implicit = chain(3);
        let mut explicit = chain(3);
        let h = explicit.add_atom(Atom::new(Element::H, Vec3::new(0.0, 1.0, 0.0)));
        explicit.add_bond(0, h, BondOrder::Single);
        let fi = Fingerprint::compute(&cfg, &implicit);
        let fe = Fingerprint::compute(&cfg, &explicit);
        // The H changes its neighbour's environment but never becomes an
        // environment centre of its own.
        assert_ne!(fi, fe);
        let lone_h = {
            let mut m = Molecule::new("h");
            m.add_atom(Atom::new(Element::H, Vec3::ZERO));
            m
        };
        assert_eq!(Fingerprint::compute(&cfg, &lone_h).count_ones(), 0);
    }

    #[test]
    fn zero_atom_molecule_is_empty() {
        let f = Fingerprint::compute(&FingerprintConfig::default(), &Molecule::new("void"));
        assert_eq!(f.count_ones(), 0);
        assert_eq!(f.num_bits(), 2048);
    }

    #[test]
    fn folding_width_bounds_bits() {
        let cfg = FingerprintConfig { radius: 2, bits: 64 };
        let f = Fingerprint::compute(&cfg, &Compound::materialize(Library::Chembl, 9, 1).mol);
        assert_eq!(f.words().len(), 1);
        assert!(f.count_ones() as usize <= 64);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn invalid_width_is_rejected() {
        Fingerprint::compute(&FingerprintConfig { radius: 2, bits: 100 }, &chain(3));
    }

    #[test]
    fn canonical_bytes_round_trip_width_and_words() {
        let f = Fingerprint::compute(&FingerprintConfig::default(), &chain(5));
        let mut bytes = Vec::new();
        f.canonical_bytes(&mut bytes);
        assert_eq!(bytes.len(), 8 + f.words().len() * 8);
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 2048);
    }
}
