//! Streaming `filter → fingerprint → score` pipeline over generated
//! compound libraries.
//!
//! The pipeline walks a library in bounded-memory chunks. Each chunk is
//! processed in two pooled passes — descriptors + rule filter first, then
//! fingerprints + ligand score for the survivors only — and folded into
//! the running [`FunnelStats`]/[`RejectionTally`] serially in index
//! order. Because [`dfpool::Pool::parallel_map`] returns results in item
//! order and the folds are serial left-to-right, every output (records,
//! tallies, top-k ranking) is bit-identical at any lane count; the
//! `chem_bench` binary asserts this across 1/2/4/8 lanes.
//!
//! No pocket, grid, or docking pose is involved anywhere here: this is
//! the cheap outermost ring of the screening funnel (see
//! `docs/CHEMISTRY.md`), used when no target structure is available and
//! as the triage stage ahead of surrogate/docking/fusion scoring.

use crate::descriptors::Descriptors;
use crate::filter::{RejectionTally, RuleFilter, Verdict};
use crate::fingerprint::{Fingerprint, FingerprintConfig};
use crate::genmol::{Compound, Library};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for one streaming library screen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScreenConfig {
    /// Library to stream.
    pub library: Library,
    /// Number of compounds to screen (indices `0..num_compounds`).
    pub num_compounds: u64,
    /// Campaign seed forwarded to compound materialization.
    pub campaign_seed: u64,
    /// Drug-likeness gate applied before any fingerprint work.
    pub filter: RuleFilter,
    /// Fingerprint parameters for survivors.
    pub fingerprint: FingerprintConfig,
    /// Compounds per chunk; bounds peak memory (descriptor pass holds one
    /// `Descriptors` per chunk item, fingerprint pass one fingerprint per
    /// surviving item).
    pub chunk_size: usize,
    /// Scores at or below this threshold count as funnel hits.
    pub hit_threshold: f64,
    /// Ranked compounds to retain in the outcome (0 keeps none).
    pub top_k: usize,
}

impl ScreenConfig {
    /// A ZINC-druglike screen over `num_compounds` ChEMBL-like compounds
    /// with default fingerprints and a 16 Ki-compound chunk.
    pub fn new(library: Library, num_compounds: u64, campaign_seed: u64) -> ScreenConfig {
        ScreenConfig {
            library,
            num_compounds,
            campaign_seed,
            filter: RuleFilter::zinc_druglike(),
            fingerprint: FingerprintConfig::default(),
            chunk_size: 16_384,
            hit_threshold: -9.0,
            top_k: 64,
        }
    }

    /// Validates chunk size and fingerprint parameters; panics on
    /// malformed fingerprint widths (see [`FingerprintConfig::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_size == 0 {
            return Err("chunk_size must be non-zero".into());
        }
        self.fingerprint.validate();
        Ok(())
    }
}

/// One surviving compound as seen by the streaming sink, in index order.
#[derive(Debug, Clone)]
pub struct ScreenRecord {
    /// Compound index within the library stream.
    pub index: u64,
    /// Filter verdict (always `passed` for records reaching the sink).
    pub verdict: Verdict,
    /// Physico-chemical descriptors.
    pub descriptors: Descriptors,
    /// Folded circular fingerprint.
    pub fingerprint: Fingerprint,
    /// Ligand-only pseudo-affinity (kcal/mol-like, more negative is
    /// better).
    pub score: f64,
}

/// Counts for each stage of the ligand-only funnel.
///
/// Named `FunnelStats` (not `FunnelReport`) to stay distinct from the
/// campaign-level `dfhts::enrichment::FunnelReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelStats {
    /// Compounds materialized and run through the rule filter.
    pub evaluated: u64,
    /// Compounds that passed the drug-likeness gate.
    pub passed_filter: u64,
    /// Compounds fingerprinted and scored (equals `passed_filter`).
    pub fingerprinted: u64,
    /// Scored compounds at or below the hit threshold.
    pub hits: u64,
    /// Chunks streamed.
    pub chunks: u64,
}

impl FunnelStats {
    /// Folds the counts of another funnel (e.g. a later chunk) into this
    /// one.
    pub fn merge(&mut self, other: &FunnelStats) {
        self.evaluated += other.evaluated;
        self.passed_filter += other.passed_filter;
        self.fingerprinted += other.fingerprinted;
        self.hits += other.hits;
        self.chunks += other.chunks;
    }

    /// Filter pass rate, 0 when nothing was evaluated.
    pub fn filter_pass_rate(&self) -> f64 {
        dftrace::rate::mean(self.passed_filter as f64, self.evaluated as f64)
    }

    /// Hit rate among scored compounds, 0 when nothing was scored.
    pub fn hit_rate(&self) -> f64 {
        dftrace::rate::mean(self.hits as f64, self.fingerprinted as f64)
    }
}

/// A ranked survivor retained in the outcome's top-k list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedCompound {
    /// Compound index within the library stream.
    pub index: u64,
    /// Ligand-only pseudo-affinity.
    pub score: f64,
}

/// Aggregated result of a streaming screen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScreenOutcome {
    /// Per-stage funnel counts.
    pub funnel: FunnelStats,
    /// Per-rule rejection accounting for the configured filter.
    pub tally: RejectionTally,
    /// Best `top_k` survivors, most negative score first, index as the
    /// deterministic tiebreak.
    pub top: Vec<RankedCompound>,
}

/// Deterministic ligand-only desirability score mapped to a
/// pseudo-affinity in roughly `(-12, -3)` kcal/mol.
///
/// A weighted product-free sum of Gaussian desirability terms over the
/// descriptors (centred on oral-drug medians: MW 380, logP 2.5, TPSA 80,
/// 5 rotors, Fsp³ 0.5) plus a fingerprint-density term rewarding
/// substructural richness near the ~12 % density typical of druglike
/// ECFPs. Pure `f64` arithmetic on per-compound inputs, so the score is
/// bit-identical regardless of chunking or lane count.
pub fn ligand_score(d: &Descriptors, fp: &Fingerprint) -> f64 {
    fn gauss(x: f64, mu: f64, sigma: f64) -> f64 {
        let z = (x - mu) / sigma;
        (-0.5 * z * z).exp()
    }
    let desirability = 0.30 * gauss(d.molecular_weight, 380.0, 120.0)
        + 0.20 * gauss(d.logp, 2.5, 1.8)
        + 0.15 * gauss(d.tpsa, 80.0, 40.0)
        + 0.15 * gauss(d.rotatable_bonds as f64, 5.0, 3.0)
        + 0.10 * gauss(d.fsp3, 0.5, 0.25)
        + 0.10 * (1.0 - (fp.density() - 0.12).abs().min(1.0));
    -3.0 - 9.0 * desirability
}

/// Streams the configured library through `filter → fingerprint → score`,
/// invoking `sink` for every surviving compound in ascending index order.
///
/// Runs on the current [`dfpool`] pool. Peak memory is bounded by
/// `chunk_size` (descriptor pass) plus the surviving fraction of one
/// chunk (fingerprint pass); molecules themselves are rematerialized per
/// pass and never retained across items.
pub fn screen_library_with(
    cfg: &ScreenConfig,
    mut sink: impl FnMut(&ScreenRecord),
) -> (FunnelStats, RejectionTally) {
    cfg.validate().expect("invalid screen config");
    let _span = dftrace::span("chem.screen");
    let pool = dfpool::current();
    let mut funnel = FunnelStats::default();
    let mut tally = RejectionTally::for_filter(&cfg.filter);

    let mut start = 0u64;
    while start < cfg.num_compounds {
        let len = (cfg.num_compounds - start).min(cfg.chunk_size as u64) as usize;

        // Pass 1: materialize + descriptors + rule filter.
        let t0 = Instant::now();
        let verdicts: Vec<(Descriptors, Verdict)> = pool.parallel_map(len, 256, |i| {
            let c =
                Compound::materialize_topology(cfg.library, start + i as u64, cfg.campaign_seed);
            let d = Descriptors::compute(&c.mol);
            let v = cfg.filter.apply(&d);
            (d, v)
        });
        dftrace::observe_us("chem.filter.chunk_us", t0.elapsed().as_micros() as u64);

        let survivors: Vec<usize> = (0..len).filter(|&i| verdicts[i].1.passed).collect();

        // Pass 2: rematerialize survivors, fingerprint and score them.
        let t1 = Instant::now();
        let scored: Vec<(Fingerprint, f64)> = pool.parallel_map(survivors.len(), 64, |si| {
            let i = survivors[si];
            let c =
                Compound::materialize_topology(cfg.library, start + i as u64, cfg.campaign_seed);
            let fp = Fingerprint::compute(&cfg.fingerprint, &c.mol);
            let score = ligand_score(&verdicts[i].0, &fp);
            (fp, score)
        });
        dftrace::observe_us("chem.fp.chunk_us", t1.elapsed().as_micros() as u64);

        // Serial index-order fold: deterministic regardless of lanes.
        let mut chunk_hits = 0u64;
        for (si, &i) in survivors.iter().enumerate() {
            let (fp, score) = &scored[si];
            if *score <= cfg.hit_threshold {
                chunk_hits += 1;
            }
            let record = ScreenRecord {
                index: start + i as u64,
                verdict: verdicts[i].1,
                descriptors: verdicts[i].0,
                fingerprint: fp.clone(),
                score: *score,
            };
            sink(&record);
        }
        for (_, v) in &verdicts {
            tally.record(v);
        }

        funnel.evaluated += len as u64;
        funnel.passed_filter += survivors.len() as u64;
        funnel.fingerprinted += survivors.len() as u64;
        funnel.hits += chunk_hits;
        funnel.chunks += 1;

        dftrace::counter_add("chem.filter.evaluated", len as u64);
        dftrace::counter_add("chem.filter.passed", survivors.len() as u64);
        dftrace::counter_add("chem.filter.rejected", (len - survivors.len()) as u64);
        dftrace::counter_add("chem.fp.computed", survivors.len() as u64);
        dftrace::counter_add("chem.screen.hits", chunk_hits);
        dftrace::counter_add("chem.screen.chunks", 1);

        start += len as u64;
    }
    (funnel, tally)
}

/// Streams the library and aggregates the outcome: funnel counts,
/// per-rule rejection tally, and the deterministic top-k ranking.
pub fn screen_library(cfg: &ScreenConfig) -> ScreenOutcome {
    let mut top: Vec<RankedCompound> = Vec::with_capacity(cfg.top_k.saturating_mul(2));
    let (funnel, tally) = screen_library_with(cfg, |r| {
        if cfg.top_k == 0 {
            return;
        }
        top.push(RankedCompound { index: r.index, score: r.score });
        if top.len() >= cfg.top_k * 2 {
            rank_truncate(&mut top, cfg.top_k);
        }
    });
    rank_truncate(&mut top, cfg.top_k);
    ScreenOutcome { funnel, tally, top }
}

/// Sorts by (score ascending, index ascending) and truncates to `k`.
fn rank_truncate(top: &mut Vec<RankedCompound>, k: usize) {
    top.sort_by(|a, b| {
        a.score.partial_cmp(&b.score).expect("scores are finite").then(a.index.cmp(&b.index))
    });
    top.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScreenConfig {
        let mut cfg = ScreenConfig::new(Library::Chembl, 400, 11);
        cfg.chunk_size = 64;
        cfg.top_k = 10;
        cfg
    }

    #[test]
    fn funnel_counts_are_consistent() {
        let out = screen_library(&tiny_config());
        assert_eq!(out.funnel.evaluated, 400);
        assert_eq!(out.funnel.passed_filter, out.funnel.fingerprinted);
        assert!(out.funnel.hits <= out.funnel.fingerprinted);
        assert_eq!(out.funnel.chunks, 7, "400 compounds / 64-chunk = 7 chunks");
        assert_eq!(out.tally.evaluated, 400);
        assert_eq!(out.tally.passed, out.funnel.passed_filter);
        assert!(out.funnel.passed_filter > 0, "a druglike generator should pass some compounds");
        assert!(out.funnel.passed_filter < 400, "the ZINC gate should reject some compounds");
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let a = screen_library(&tiny_config());
        let mut cfg = tiny_config();
        cfg.chunk_size = 13; // ragged chunks
        let b = screen_library(&cfg);
        assert_eq!(a.funnel.evaluated, b.funnel.evaluated);
        assert_eq!(a.funnel.passed_filter, b.funnel.passed_filter);
        assert_eq!(a.funnel.hits, b.funnel.hits);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.top, b.top);
        assert_ne!(a.funnel.chunks, b.funnel.chunks, "only the chunk count may differ");
    }

    #[test]
    fn pooled_screen_is_bit_identical_to_serial() {
        let cfg = tiny_config();
        let serial = dfpool::Pool::new(1).install(|| screen_library(&cfg));
        for lanes in [2usize, 4] {
            let pooled = dfpool::Pool::new(lanes).install(|| screen_library(&cfg));
            assert_eq!(serial.tally, pooled.tally, "{lanes}-lane tally drifted");
            assert_eq!(serial.top, pooled.top, "{lanes}-lane ranking drifted");
            assert_eq!(serial.funnel, pooled.funnel, "{lanes}-lane funnel drifted");
        }
    }

    #[test]
    fn sink_sees_survivors_in_index_order_with_scores_in_band() {
        let mut last = None;
        let cfg = tiny_config();
        let (funnel, _) = screen_library_with(&cfg, |r| {
            assert!(r.verdict.passed);
            assert!(r.score > -12.5 && r.score < -2.9, "score {} outside band", r.score);
            assert!(r.fingerprint.count_ones() > 0, "survivors have non-empty fingerprints");
            if let Some(prev) = last {
                assert!(r.index > prev, "sink must run in ascending index order");
            }
            last = Some(r.index);
        });
        assert_eq!(funnel.fingerprinted, funnel.passed_filter);
    }

    #[test]
    fn top_k_is_sorted_best_first_and_bounded() {
        let out = screen_library(&tiny_config());
        assert!(out.top.len() <= 10);
        assert!(!out.top.is_empty());
        for w in out.top.windows(2) {
            assert!(
                w[0].score < w[1].score || (w[0].score == w[1].score && w[0].index < w[1].index),
                "ranking must be (score, index)-ordered"
            );
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = tiny_config();
        cfg.chunk_size = 0;
        assert!(cfg.validate().is_err());
    }
}
