//! Molecular descriptors: the whole-molecule properties the screening
//! pipeline filters and analyses on (the paper's campaign fed predictions
//! into downstream "pharmacokinetic and safety" evaluation, §4.2 — these
//! are the standard descriptors such tooling consumes).

use crate::element::Element;
use crate::mol::{BondOrder, Molecule};
use serde::{Deserialize, Serialize};

/// A bundle of standard descriptors for one molecule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Descriptors {
    /// Molecular weight in Daltons.
    pub molecular_weight: f64,
    /// Non-hydrogen atom count.
    pub heavy_atoms: usize,
    /// Carbon atom count (the ZINC rules require ≥ 3).
    pub carbons: usize,
    /// Rotatable bonds under the Vina torsion convention.
    pub rotatable_bonds: usize,
    /// Rotatable bonds under the strict (amide-excluding) convention the
    /// ZINC druglike rules use; see
    /// [`Molecule::num_rotatable_bonds_strict`].
    pub rotatable_bonds_strict: usize,
    /// Heavy-atom bonds that are not strict rotors (ZINC caps these
    /// at 50).
    pub rigid_bonds: usize,
    /// Hydrogen-bond donors (heavy-atom convention).
    pub hbond_donors: usize,
    /// Hydrogen-bond acceptors.
    pub hbond_acceptors: usize,
    /// Crude cLogP-style lipophilicity.
    pub logp: f64,
    /// Topological polar surface area estimate (Å²): per-polar-atom
    /// contributions in the spirit of Ertl's TPSA.
    pub tpsa: f64,
    /// Number of independent rings (cyclomatic number of the bond graph).
    pub ring_count: usize,
    /// Fraction of sp³-like carbons (degree-4-capable carbons with only
    /// single bonds) — the Fsp3 medicinal-chemistry descriptor.
    pub fsp3: f64,
    /// Radius of gyration of the conformer (Å).
    pub radius_of_gyration: f64,
}

impl Descriptors {
    /// Computes every descriptor for a molecule.
    pub fn compute(mol: &Molecule) -> Descriptors {
        let rotatable_bonds_strict = mol.num_rotatable_bonds_strict();
        Descriptors {
            molecular_weight: mol.molecular_weight(),
            heavy_atoms: mol.num_heavy_atoms(),
            carbons: mol.num_carbons(),
            rotatable_bonds: mol.num_rotatable_bonds(),
            rotatable_bonds_strict,
            rigid_bonds: mol.num_heavy_bonds().saturating_sub(rotatable_bonds_strict),
            hbond_donors: mol.num_hbond_donors(),
            hbond_acceptors: mol.num_hbond_acceptors(),
            logp: mol.logp_estimate(),
            tpsa: tpsa_estimate(mol),
            ring_count: ring_count(mol),
            fsp3: fsp3(mol),
            radius_of_gyration: mol.radius_of_gyration(),
        }
    }

    /// Lipinski-style rule-of-five violations (adapted to implicit-H
    /// molecules; see `Compound::is_drug_like` for the pipeline's gate).
    pub fn lipinski_violations(&self) -> usize {
        let mut v = 0;
        if self.molecular_weight > 500.0 {
            v += 1;
        }
        if self.logp > 5.0 {
            v += 1;
        }
        if self.hbond_donors > 5 {
            v += 1;
        }
        if self.hbond_acceptors > 10 {
            v += 1;
        }
        v
    }

    /// Veber's oral-bioavailability criteria: ≤10 rotatable bonds and
    /// TPSA ≤ 140 Å².
    pub fn passes_veber(&self) -> bool {
        self.rotatable_bonds <= 10 && self.tpsa <= 140.0
    }

    /// Non-carbon heavy atoms per carbon (the ZINC rules cap this
    /// at 2.0). Defined as `+∞` for carbon-free molecules so a max-bound
    /// rule rejects them rather than dividing by zero.
    pub fn hetero_carbon_ratio(&self) -> f64 {
        if self.carbons == 0 {
            f64::INFINITY
        } else {
            (self.heavy_atoms - self.carbons) as f64 / self.carbons as f64
        }
    }
}

/// Number of independent cycles: |E| - |V| + components (here 1, since
/// generated molecules are connected; disconnected inputs count per
/// component).
pub fn ring_count(mol: &Molecule) -> usize {
    let components = count_components(mol);
    (mol.bonds.len() + components).saturating_sub(mol.num_atoms())
}

fn count_components(mol: &Molecule) -> usize {
    let n = mol.num_atoms();
    if n == 0 {
        return 0;
    }
    let adj = mol.adjacency();
    let mut seen = vec![false; n];
    let mut components = 0;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
    }
    components
}

/// TPSA-style polar surface area: fixed per-atom contributions for polar
/// atoms, modulated by bonding environment (double-bonded O contributes
/// like a carbonyl).
pub fn tpsa_estimate(mol: &Molecule) -> f64 {
    let mut total = 0.0;
    for (i, atom) in mol.atoms.iter().enumerate() {
        let has_double =
            mol.bonds.iter().any(|b| (b.a == i || b.b == i) && b.order == BondOrder::Double);
        total += match atom.element {
            Element::O => {
                if has_double {
                    17.1 // carbonyl-like
                } else {
                    20.2 // ether/hydroxyl-like
                }
            }
            Element::N => {
                if has_double {
                    12.4
                } else {
                    26.0 // amine-like (implicit Hs)
                }
            }
            Element::S => 25.3,
            Element::P => 13.6,
            _ => 0.0,
        };
    }
    total
}

/// Fraction of saturated carbons among all carbons.
pub fn fsp3(mol: &Molecule) -> f64 {
    let mut carbons = 0usize;
    let mut sp3 = 0usize;
    for (i, atom) in mol.atoms.iter().enumerate() {
        if atom.element != Element::C {
            continue;
        }
        carbons += 1;
        let saturated =
            mol.bonds.iter().filter(|b| b.a == i || b.b == i).all(|b| b.order == BondOrder::Single);
        if saturated {
            sp3 += 1;
        }
    }
    if carbons == 0 {
        0.0
    } else {
        sp3 as f64 / carbons as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmol::{generate_molecule, MolGenConfig};
    use crate::geom::Vec3;
    use crate::mol::Atom;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new("chain");
        for i in 0..n {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 0.0, 0.0)));
        }
        for i in 1..n {
            m.add_bond(i - 1, i, BondOrder::Single);
        }
        m
    }

    #[test]
    fn ring_count_basics() {
        assert_eq!(ring_count(&chain(5)), 0);
        let mut ring = chain(6);
        ring.add_bond(0, 5, BondOrder::Single);
        assert_eq!(ring_count(&ring), 1);
        // Fused bicyclic: add a chord.
        ring.add_bond(0, 3, BondOrder::Single);
        assert_eq!(ring_count(&ring), 2);
    }

    #[test]
    fn tpsa_counts_polar_atoms_only() {
        let m = chain(4);
        assert_eq!(tpsa_estimate(&m), 0.0);
        let mut polar = chain(3);
        let o = polar.add_atom(Atom::new(Element::O, Vec3::new(0.0, 1.3, 0.0)));
        polar.add_bond(0, o, BondOrder::Double);
        let carbonyl = tpsa_estimate(&polar);
        assert!((carbonyl - 17.1).abs() < 1e-9);
        // Single-bonded O contributes more (hydroxyl-like).
        let mut alcohol = chain(3);
        let o2 = alcohol.add_atom(Atom::new(Element::O, Vec3::new(0.0, 1.3, 0.0)));
        alcohol.add_bond(0, o2, BondOrder::Single);
        assert!(tpsa_estimate(&alcohol) > carbonyl);
    }

    #[test]
    fn fsp3_distinguishes_saturation() {
        let m = chain(4);
        assert_eq!(fsp3(&m), 1.0);
        let mut unsat = chain(4);
        unsat.bonds[0].order = BondOrder::Double;
        assert_eq!(fsp3(&unsat), 0.5, "two of four carbons touch the double bond");
    }

    #[test]
    fn descriptor_bundle_is_consistent_with_molecule_methods() {
        let m = generate_molecule(&MolGenConfig::default(), "m", 13);
        let d = Descriptors::compute(&m);
        assert_eq!(d.heavy_atoms, m.num_heavy_atoms());
        assert_eq!(d.rotatable_bonds, m.num_rotatable_bonds());
        assert!((d.molecular_weight - m.molecular_weight()).abs() < 1e-9);
        assert!(d.tpsa >= 0.0);
        assert!((0.0..=1.0).contains(&d.fsp3));
    }

    #[test]
    fn lipinski_and_veber_gates() {
        let d = Descriptors {
            molecular_weight: 650.0,
            heavy_atoms: 40,
            carbons: 30,
            rotatable_bonds: 12,
            rotatable_bonds_strict: 11,
            rigid_bonds: 30,
            hbond_donors: 6,
            hbond_acceptors: 11,
            logp: 5.5,
            tpsa: 150.0,
            ring_count: 3,
            fsp3: 0.4,
            radius_of_gyration: 5.0,
        };
        assert_eq!(d.lipinski_violations(), 4);
        assert!(!d.passes_veber());
        let ok = Descriptors {
            molecular_weight: 350.0,
            rotatable_bonds: 5,
            hbond_donors: 2,
            hbond_acceptors: 5,
            logp: 2.5,
            tpsa: 80.0,
            ..d
        };
        assert_eq!(ok.lipinski_violations(), 0);
        assert!(ok.passes_veber());
    }

    #[test]
    fn zero_heavy_atom_molecules_have_defined_descriptors() {
        // An empty molecule and an all-hydrogen molecule are pathological
        // inputs the filter engine must reject, not crash on.
        for m in [Molecule::new("void"), {
            let mut h2 = Molecule::new("h2");
            let a = h2.add_atom(Atom::new(Element::H, Vec3::ZERO));
            let b = h2.add_atom(Atom::new(Element::H, Vec3::new(0.7, 0.0, 0.0)));
            h2.add_bond(a, b, BondOrder::Single);
            h2
        }] {
            let d = Descriptors::compute(&m);
            assert_eq!(d.heavy_atoms, 0);
            assert_eq!(d.carbons, 0);
            assert_eq!(d.rotatable_bonds, 0);
            assert_eq!(d.rigid_bonds, 0);
            assert_eq!(d.fsp3, 0.0);
            assert!(d.hetero_carbon_ratio().is_infinite(), "carbon-free ratio is +inf");
        }
    }

    #[test]
    fn disconnected_fragments_accumulate_descriptors() {
        // A two-fragment input (e.g. a salt pair): ring count, rotors and
        // rigid bonds accumulate per component, no panics.
        let mut m = chain(6);
        m.add_bond(0, 5, BondOrder::Single); // ring fragment
        let base = m.num_atoms();
        for i in 0..4 {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 20.0, 0.0)));
        }
        for i in 1..4 {
            m.add_bond(base + i - 1, base + i, BondOrder::Single);
        }
        assert!(!m.is_connected());
        let d = Descriptors::compute(&m);
        assert_eq!(d.ring_count, 1);
        assert_eq!(d.rotatable_bonds, 1, "one rotor in the chain fragment");
        assert_eq!(d.rigid_bonds, 8, "6 ring bonds + 2 terminal chain bonds");
        assert_eq!(d.heavy_atoms, 10);
    }

    #[test]
    fn strict_rotors_never_exceed_vina_rotors() {
        for seed in 0..25 {
            let m = generate_molecule(&MolGenConfig::default(), "m", seed);
            let d = Descriptors::compute(&m);
            assert!(d.rotatable_bonds_strict <= d.rotatable_bonds, "seed {seed}");
            assert_eq!(d.rigid_bonds + d.rotatable_bonds_strict, m.num_heavy_bonds());
        }
    }

    #[test]
    fn generated_libraries_have_reasonable_descriptor_ranges() {
        for seed in 0..15 {
            let m = generate_molecule(&MolGenConfig::default(), "m", seed);
            let d = Descriptors::compute(&m);
            assert!(d.molecular_weight > 50.0 && d.molecular_weight < 800.0);
            assert!(d.radius_of_gyration > 1.0 && d.radius_of_gyration < 12.0);
            assert!(d.ring_count <= 8);
        }
    }
}
