//! Property tests for the ligand-based screening front-end.
//!
//! Fingerprints must be pure functions of the bond graph (deterministic
//! across recomputation and conformers), Tanimoto similarity must stay in
//! `[0, 1]` with its identity cases, and descriptor/filter invariants must
//! hold across the whole generated-compound space — not just the handful
//! of fixed molecules in the unit tests.

use dfchem::genmol::{Compound, Library};
use dfchem::{Descriptors, Fingerprint, FingerprintConfig, RuleFilter};
use proptest::prelude::*;

fn compound(lib: usize, index: u64, seed: u64) -> Compound {
    Compound::materialize(Library::ALL[lib], index, seed)
}

fn config(radius: usize, words: usize) -> FingerprintConfig {
    FingerprintConfig { radius, bits: words * 64 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fingerprint is a pure function of the molecule: recomputing it
    /// gives identical words, and rigid translation of the conformer
    /// (which changes every coordinate but no bond) changes nothing.
    #[test]
    fn fingerprints_are_deterministic(
        lib in 0usize..4,
        index in 0u64..5_000,
        seed in 0u64..64,
        radius in 0usize..=4,
        words in 1usize..=64,
    ) {
        let c = compound(lib, index, seed);
        let cfg = config(radius, words);
        let a = Fingerprint::compute(&cfg, &c.mol);
        let b = Fingerprint::compute(&cfg, &c.mol);
        prop_assert_eq!(&a, &b);

        let mut moved = c.mol.clone();
        for atom in &mut moved.atoms {
            atom.pos.x += 7.5;
            atom.pos.y -= 3.25;
            atom.pos.z += 0.125;
        }
        let m = Fingerprint::compute(&cfg, &moved);
        prop_assert_eq!(&a, &m, "fingerprints must ignore conformer coordinates");
    }

    /// Tanimoto similarity is bounded in [0, 1], symmetric, and 1 on
    /// self-comparison for any non-empty fingerprint.
    #[test]
    fn tanimoto_is_bounded_and_symmetric(
        lib_a in 0usize..4,
        idx_a in 0u64..5_000,
        lib_b in 0usize..4,
        idx_b in 0u64..5_000,
        seed in 0u64..64,
        radius in 0usize..=4,
        words in 1usize..=64,
    ) {
        let cfg = config(radius, words);
        let fa = Fingerprint::compute(&cfg, &compound(lib_a, idx_a, seed).mol);
        let fb = Fingerprint::compute(&cfg, &compound(lib_b, idx_b, seed).mol);
        let s = fa.tanimoto(&fb);
        prop_assert!((0.0..=1.0).contains(&s), "tanimoto {} out of [0,1]", s);
        prop_assert_eq!(s.to_bits(), fb.tanimoto(&fa).to_bits(), "tanimoto must be symmetric");
        if fa.count_ones() > 0 {
            prop_assert_eq!(fa.tanimoto(&fa).to_bits(), 1.0f64.to_bits());
        }
    }

    /// Set bits never exceed the configured width, and density stays a
    /// fraction.
    #[test]
    fn fingerprint_population_is_bounded(
        lib in 0usize..4,
        index in 0u64..5_000,
        seed in 0u64..64,
        radius in 0usize..=4,
        words in 1usize..=64,
    ) {
        let cfg = config(radius, words);
        let fp = Fingerprint::compute(&cfg, &compound(lib, index, seed).mol);
        prop_assert_eq!(fp.num_bits(), cfg.bits);
        prop_assert!(fp.count_ones() as usize <= cfg.bits);
        prop_assert!((0.0..=1.0).contains(&fp.density()));
    }

    /// Descriptor/filter invariants over the generated compound space:
    /// strict rotors never exceed Vina rotors, and every verdict's
    /// per-rule mask is consistent with pass/fail under the filter's
    /// violation budget.
    #[test]
    fn filter_verdicts_are_internally_consistent(
        lib in 0usize..4,
        index in 0u64..20_000,
        seed in 0u64..64,
    ) {
        let d = Descriptors::compute(&compound(lib, index, seed).mol);
        prop_assert!(d.rotatable_bonds_strict <= d.rotatable_bonds);
        for filter in [RuleFilter::lipinski(), RuleFilter::veber(), RuleFilter::zinc_druglike()] {
            let v = filter.apply(&d);
            prop_assert!(v.violations >> filter.rules.len() == 0, "mask has bits beyond the table");
            prop_assert_eq!(v.passed, v.num_violations() <= filter.max_violations);
        }
    }
}
