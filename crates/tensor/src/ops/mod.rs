//! Differentiable operations, implemented as inherent methods on
//! [`crate::graph::Graph`].
//!
//! Each sub-module contributes one family of ops; all follow the same
//! pattern: compute the forward value eagerly, then push a node whose
//! backward closure maps the output gradient to parent gradients.

mod conv;
mod elementwise;
pub(crate) mod gemm;
mod linalg;
mod loss;
pub mod microkernel;
mod norm;
mod pool;
pub mod reference;
mod segment;

pub use conv::{conv3d_backward_input, conv3d_backward_weight, conv3d_forward};
pub use norm::BatchNormOut;

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Finite-difference gradient checker used by unit and property tests.
///
/// Builds the graph twice per perturbed element and compares the central
/// difference against the analytic gradient from [`Graph::backward`]. Only
/// meaningful for deterministic graph builders (no dropout).
pub struct GradCheck {
    /// Perturbation size.
    pub eps: f32,
    /// Maximum allowed absolute error between analytic and numeric grads.
    pub tol: f32,
}

impl Default for GradCheck {
    fn default() -> Self {
        Self { eps: 1e-2, tol: 2e-2 }
    }
}

impl GradCheck {
    /// Checks gradients of a scalar-valued graph builder w.r.t. every
    /// element of every input tensor.
    pub fn check(
        &self,
        inputs: &[Tensor],
        build: impl Fn(&mut Graph, &[VarId]) -> VarId,
    ) -> Result<(), String> {
        // Analytic gradients.
        let mut g = Graph::new();
        let vars: Vec<VarId> = inputs.iter().map(|t| g.input(t.clone())).collect();
        let loss = build(&mut g, &vars);
        if g.value(loss).numel() != 1 {
            return Err("gradcheck builder must return a scalar".into());
        }
        let grads = g.backward(loss);
        let analytic: Vec<Tensor> = vars
            .iter()
            .map(|&v| grads.grad(v).cloned().unwrap_or_else(|| Tensor::zeros(g.value(v).shape())))
            .collect();

        // Numeric gradients by central differences.
        for (ti, t) in inputs.iter().enumerate() {
            for ei in 0..t.numel() {
                let eval = |delta: f32| -> f32 {
                    let mut perturbed: Vec<Tensor> = inputs.to_vec();
                    perturbed[ti].clone_from(t);
                    perturbed[ti].data_mut()[ei] += delta;
                    let mut g2 = Graph::new();
                    let vs: Vec<VarId> = perturbed.iter().map(|p| g2.input(p.clone())).collect();
                    let l = build(&mut g2, &vs);
                    g2.value(l).item()
                };
                let numeric = (eval(self.eps) - eval(-self.eps)) / (2.0 * self.eps);
                let got = analytic[ti].data()[ei];
                if (numeric - got).abs() > self.tol {
                    return Err(format!(
                        "grad mismatch input {ti} elem {ei}: analytic {got}, numeric {numeric}"
                    ));
                }
            }
        }
        Ok(())
    }
}
