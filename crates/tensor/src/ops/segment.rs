//! Gather/scatter ops for graph neural networks.
//!
//! The SG-CNN batches molecular graphs the PyTorch-Geometric way: all nodes
//! of a batch are stacked into one `[N, F]` matrix, edges index into it, and
//! a segment vector maps each node to its graph. Message passing is then
//! `index_select_rows` (gather endpoint features) followed by `segment_sum`
//! (aggregate messages per node), and readout is `segment_sum`/`segment_mean`
//! over the graph assignment.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

impl Graph {
    /// Gathers rows of a `[N, F]` matrix: output row `i` is `x[idx[i]]`.
    pub fn index_select_rows(&mut self, x: VarId, idx: &[usize]) -> VarId {
        let xt = self.value(x);
        assert_eq!(xt.rank(), 2, "index_select_rows requires rank 2, got {:?}", xt.shape());
        let (n, f) = (xt.shape()[0], xt.shape()[1]);
        for &i in idx {
            assert!(i < n, "row index {i} out of bounds for {n} rows");
        }
        let mut out = Tensor::zeros(&[idx.len(), f]);
        for (r, &i) in idx.iter().enumerate() {
            out.data_mut()[r * f..(r + 1) * f].copy_from_slice(&xt.data()[i * f..(i + 1) * f]);
        }
        let idx_c = idx.to_vec();
        self.push_op(
            vec![x],
            out,
            Box::new(move |ctx| {
                let mut g = Tensor::zeros(&[n, f]);
                for (r, &i) in idx_c.iter().enumerate() {
                    let src = &ctx.grad.data()[r * f..(r + 1) * f];
                    let dst = &mut g.data_mut()[i * f..(i + 1) * f];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                vec![g]
            }),
        )
    }

    /// Sums rows of `[E, F]` into `num_segments` buckets given per-row
    /// segment ids; output is `[num_segments, F]`.
    pub fn segment_sum(&mut self, x: VarId, seg: &[usize], num_segments: usize) -> VarId {
        let xt = self.value(x);
        assert_eq!(xt.rank(), 2, "segment_sum requires rank 2");
        let (e, f) = (xt.shape()[0], xt.shape()[1]);
        assert_eq!(seg.len(), e, "segment vector length {} != rows {}", seg.len(), e);
        for &s in seg {
            assert!(s < num_segments, "segment id {s} out of range {num_segments}");
        }
        let mut out = Tensor::zeros(&[num_segments, f]);
        for (r, &s) in seg.iter().enumerate() {
            let src = &xt.data()[r * f..(r + 1) * f];
            let dst = &mut out.data_mut()[s * f..(s + 1) * f];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
        let seg_c = seg.to_vec();
        self.push_op(
            vec![x],
            out,
            Box::new(move |ctx| {
                let mut g = Tensor::zeros(&[e, f]);
                for (r, &s) in seg_c.iter().enumerate() {
                    g.data_mut()[r * f..(r + 1) * f]
                        .copy_from_slice(&ctx.grad.data()[s * f..(s + 1) * f]);
                }
                vec![g]
            }),
        )
    }

    /// Mean-pools rows into segments: `segment_sum` divided by bucket size
    /// (empty buckets yield zeros).
    pub fn segment_mean(&mut self, x: VarId, seg: &[usize], num_segments: usize) -> VarId {
        let mut counts = vec![0f32; num_segments];
        for &s in seg {
            counts[s] += 1.0;
        }
        let summed = self.segment_sum(x, seg, num_segments);
        // Divide each row by its count via a constant row-scale op.
        let st = self.value(summed);
        let f = st.shape()[1];
        let mut out = st.clone();
        for (r, &c) in counts.iter().enumerate() {
            let scale = if c > 0.0 { 1.0 / c } else { 0.0 };
            for v in &mut out.data_mut()[r * f..(r + 1) * f] {
                *v *= scale;
            }
        }
        let counts_c = counts;
        self.push_op(
            vec![summed],
            out,
            Box::new(move |ctx| {
                let mut g = ctx.grad.clone();
                let f = g.shape()[1];
                for (r, &c) in counts_c.iter().enumerate() {
                    let scale = if c > 0.0 { 1.0 / c } else { 0.0 };
                    for v in &mut g.data_mut()[r * f..(r + 1) * f] {
                        *v *= scale;
                    }
                }
                vec![g]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn gather_selects_rows() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[3, 2]));
        let y = g.index_select_rows(x, &[2, 0, 2]);
        assert_eq!(g.value(y).data(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn segment_sum_buckets() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 10., 2., 20., 3., 30.], &[3, 2]));
        let y = g.segment_sum(x, &[0, 1, 0], 2);
        assert_eq!(g.value(y).data(), &[4., 40., 2., 20.]);
    }

    #[test]
    fn segment_mean_averages_and_handles_empty() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2., 4., 6., 8.], &[2, 2]));
        let y = g.segment_mean(x, &[1, 1], 3);
        assert_eq!(g.value(y).data(), &[0., 0., 4., 6., 0., 0.]);
    }

    #[test]
    fn grad_gather_scatter_round_trip() {
        let mut r = rng(1);
        let x = Tensor::randn(&[4, 3], &mut r);
        GradCheck::default()
            .check(&[x], |g, v| {
                let gathered = g.index_select_rows(v[0], &[0, 0, 1, 3, 2, 3]);
                let pooled = g.segment_sum(gathered, &[0, 1, 1, 0, 1, 0], 2);
                let sq = g.square(pooled);
                g.sum_all(sq)
            })
            .unwrap();
    }

    #[test]
    fn grad_segment_mean() {
        let mut r = rng(2);
        let x = Tensor::randn(&[5, 2], &mut r);
        GradCheck::default()
            .check(&[x], |g, v| {
                let m = g.segment_mean(v[0], &[0, 0, 1, 1, 1], 2);
                let sq = g.square(m);
                g.sum_all(sq)
            })
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_sum_validates_ids() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1]));
        g.segment_sum(x, &[5], 2);
    }
}
