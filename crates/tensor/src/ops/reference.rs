//! Naive reference kernels — the bit-exactness oracle for the blocked GEMM
//! and the im2col-lowered conv3d passes.
//!
//! These are the kernels the optimized layer must match **bitwise**, not
//! approximately: every output element is a single `f32` accumulator folded
//! in ascending-k order with plain `mul` + `add`, where the k axis of a
//! convolution is `(ic, fz, fy, fx)` and out-of-bounds (zero-padding) taps
//! contribute an explicit `0.0` term. Adding a `±0.0` product never changes
//! a finite accumulator that started at `+0.0`, so these folds are also
//! bit-identical to loops that skip the padding taps entirely — but writing
//! the zeros out makes the contract (and its equivalence to the GEMM
//! lowering in `ops::gemm`) explicit.
//!
//! Used by the kernel proptests (`crates/tensor/tests/kernel_proptests.rs`)
//! and as the "naive" side of `dfbench`'s `kernel_bench`. Nothing on a hot
//! path calls these.

use crate::tensor::Tensor;

/// `[m,k] x [k,n] -> [m,n]`, triple loop, ascending-k accumulation.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "reference matmul inner dims differ");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[i * k + p] * bd[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a^T x b` for `a: [k,m]`, `b: [k,n]` -> `[m,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "reference matmul_tn inner dims differ");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[p * m + i] * bd[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a x b^T` for `a: [m,k]`, `b: [n,k]` -> `[m,n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "reference matmul_nt inner dims differ");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[i * k + p] * bd[j * k + p];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn dims5(s: &[usize]) -> (usize, usize, usize, usize, usize) {
    assert_eq!(s.len(), 5, "expected rank-5 shape, got {s:?}");
    (s[0], s[1], s[2], s[3], s[4])
}

fn out_dim(input: usize, k: usize, pad: usize) -> usize {
    input + 2 * pad + 1 - k
}

/// Direct-form conv3d forward (no bias): input `[N,C,D,H,W]`, kernel
/// `[O,C,kd,kh,kw]`, stride 1, symmetric zero padding. Each output element
/// folds its `C·kd·kh·kw` taps in `(ic, fz, fy, fx)` order.
pub fn conv3d_forward(x: &Tensor, w: &Tensor, pad: usize) -> Tensor {
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, cw, kd, kh, kw) = dims5(w.shape());
    assert_eq!(c, cw, "reference conv3d channel mismatch");
    let (od, oh, ow) = (out_dim(d, kd, pad), out_dim(h, kh, pad), out_dim(wd, kw, pad));
    let mut out = Tensor::zeros(&[n, o, od, oh, ow]);
    let (xd, wdta) = (x.data(), w.data());
    let ipad = pad as isize;
    let spatial = od * oh * ow;
    let odata = out.data_mut();
    for bn in 0..n {
        for oc in 0..o {
            let oblock = &mut odata[(bn * o + oc) * spatial..(bn * o + oc + 1) * spatial];
            for zd in 0..od {
                for yh in 0..oh {
                    for xw in 0..ow {
                        let mut acc = 0.0f32;
                        for ic in 0..c {
                            let wbase = (oc * c + ic) * kd * kh * kw;
                            let xbase = (bn * c + ic) * d * h * wd;
                            for fz in 0..kd {
                                let iz = zd as isize + fz as isize - ipad;
                                for fy in 0..kh {
                                    let iy = yh as isize + fy as isize - ipad;
                                    for fx in 0..kw {
                                        let ix = xw as isize + fx as isize - ipad;
                                        let xv = tap(xd, xbase, iz, iy, ix, d, h, wd);
                                        let wi = wbase + (fz * kh + fy) * kw + fx;
                                        acc += xv * wdta[wi];
                                    }
                                }
                            }
                        }
                        oblock[(zd * oh + yh) * ow + xw] = acc;
                    }
                }
            }
        }
    }
    out
}

/// Gradient w.r.t. the conv3d input. For each `(bn, ic)` channel the
/// contributions arrive in `(spatial position s, fz, fy, fx)` order, and the
/// per-tap value is itself a fold over `oc` ascending — mirroring the
/// GEMM-then-col2im lowering.
pub fn conv3d_backward_input(gout: &Tensor, w: &Tensor, xshape: &[usize], pad: usize) -> Tensor {
    let (n, c, d, h, wd) = dims5(xshape);
    let (o, _, kd, kh, kw) = dims5(w.shape());
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let mut gx = Tensor::zeros(xshape);
    let (gd, wdta) = (gout.data(), w.data());
    let ipad = pad as isize;
    let in_spatial = d * h * wd;
    let spatial = od * oh * ow;
    let gxd = gx.data_mut();
    for bn in 0..n {
        for ic in 0..c {
            let gxblock = &mut gxd[(bn * c + ic) * in_spatial..(bn * c + ic + 1) * in_spatial];
            for s in 0..spatial {
                let (zd, yh, xw) = (s / (oh * ow), (s / ow) % oh, s % ow);
                for fz in 0..kd {
                    let iz = zd as isize + fz as isize - ipad;
                    if iz < 0 || iz >= d as isize {
                        continue;
                    }
                    for fy in 0..kh {
                        let iy = yh as isize + fy as isize - ipad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for fx in 0..kw {
                            let ix = xw as isize + fx as isize - ipad;
                            if ix < 0 || ix >= wd as isize {
                                continue;
                            }
                            let mut g = 0.0f32;
                            for oc in 0..o {
                                let wi = ((oc * c + ic) * kd + fz) * kh * kw + fy * kw + fx;
                                g += gd[(bn * o + oc) * spatial + s] * wdta[wi];
                            }
                            let xi = (iz as usize) * h * wd + (iy as usize) * wd + ix as usize;
                            gxblock[xi] += g;
                        }
                    }
                }
            }
        }
    }
    gx
}

/// Gradient w.r.t. the conv3d kernel. Each kernel element folds its
/// contributions over `(bn, spatial position)` ascending, with padding taps
/// contributing explicit zeros.
pub fn conv3d_backward_weight(gout: &Tensor, x: &Tensor, wshape: &[usize], pad: usize) -> Tensor {
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, _, kd, kh, kw) = dims5(wshape);
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let mut gw = Tensor::zeros(wshape);
    let (gd, xd) = (gout.data(), x.data());
    let ipad = pad as isize;
    let spatial = od * oh * ow;
    let gwd = gw.data_mut();
    for oc in 0..o {
        for ic in 0..c {
            for fz in 0..kd {
                for fy in 0..kh {
                    for fx in 0..kw {
                        let mut acc = 0.0f32;
                        for bn in 0..n {
                            let xbase = (bn * c + ic) * d * h * wd;
                            for s in 0..spatial {
                                let (zd, yh, xw) = (s / (oh * ow), (s / ow) % oh, s % ow);
                                let iz = zd as isize + fz as isize - ipad;
                                let iy = yh as isize + fy as isize - ipad;
                                let ix = xw as isize + fx as isize - ipad;
                                let xv = tap(xd, xbase, iz, iy, ix, d, h, wd);
                                acc += gd[(bn * o + oc) * spatial + s] * xv;
                            }
                        }
                        gwd[((oc * c + ic) * kd + fz) * kh * kw + fy * kw + fx] = acc;
                    }
                }
            }
        }
    }
    gw
}

/// Input tap with explicit zero padding.
#[inline]
#[allow(clippy::too_many_arguments)] // three coordinates + three bounds; mirrors the conv loop nest
fn tap(
    xd: &[f32],
    xbase: usize,
    iz: isize,
    iy: isize,
    ix: isize,
    d: usize,
    h: usize,
    wd: usize,
) -> f32 {
    if iz < 0 || iz >= d as isize || iy < 0 || iy >= h as isize || ix < 0 || ix >= wd as isize {
        0.0
    } else {
        xd[xbase + (iz as usize) * h * wd + (iy as usize) * wd + ix as usize]
    }
}
