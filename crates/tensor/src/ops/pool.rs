//! Max pooling over the three spatial dimensions.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

impl Graph {
    /// Non-overlapping 3-D max pooling with cubic window `k` and stride `k`.
    ///
    /// Trailing voxels that do not fill a complete window are dropped
    /// (floor semantics, matching PyTorch's default).
    pub fn maxpool3d(&mut self, x: VarId, k: usize) -> VarId {
        assert!(k >= 1, "pool window must be >= 1");
        let xt = self.value(x);
        let s = xt.shape();
        assert_eq!(s.len(), 5, "maxpool3d expects [N,C,D,H,W], got {s:?}");
        let (n, c, d, h, w) = (s[0], s[1], s[2], s[3], s[4]);
        let (od, oh, ow) = (d / k, h / k, w / k);
        assert!(od > 0 && oh > 0 && ow > 0, "pool window {k} larger than input {s:?}");
        let mut out = Tensor::zeros(&[n, c, od, oh, ow]);
        let mut argmax = vec![0usize; out.numel()];
        {
            let xd = xt.data();
            let odata = out.data_mut();
            for bn in 0..n {
                for ch in 0..c {
                    let xbase = (bn * c + ch) * d * h * w;
                    for zd in 0..od {
                        for yh in 0..oh {
                            for xw in 0..ow {
                                let mut best = f32::NEG_INFINITY;
                                let mut best_i = 0usize;
                                for fz in 0..k {
                                    for fy in 0..k {
                                        for fx in 0..k {
                                            let xi = xbase
                                                + (zd * k + fz) * h * w
                                                + (yh * k + fy) * w
                                                + (xw * k + fx);
                                            if xd[xi] > best {
                                                best = xd[xi];
                                                best_i = xi;
                                            }
                                        }
                                    }
                                }
                                let oi = (((bn * c + ch) * od + zd) * oh + yh) * ow + xw;
                                odata[oi] = best;
                                argmax[oi] = best_i;
                            }
                        }
                    }
                }
            }
        }
        let xshape = s.to_vec();
        self.push_op(
            vec![x],
            out,
            Box::new(move |ctx| {
                let mut gx = Tensor::zeros(&xshape);
                for (oi, &g) in ctx.grad.data().iter().enumerate() {
                    gx.data_mut()[argmax[oi]] += g;
                }
                vec![gx]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn pool_picks_maxima() {
        let mut g = Graph::new();
        let mut data = vec![0.0f32; 8];
        data[3] = 5.0; // somewhere inside the single 2x2x2 window
        let x = g.input(Tensor::from_vec(data, &[1, 1, 2, 2, 2]));
        let y = g.maxpool3d(x, 2);
        assert_eq!(g.value(y).shape(), &[1, 1, 1, 1, 1]);
        assert_eq!(g.value(y).item(), 5.0);
    }

    #[test]
    fn pool_shape_floors() {
        let mut g = Graph::new();
        let mut r = rng(1);
        let x = g.input(Tensor::randn(&[1, 2, 5, 5, 5], &mut r));
        let y = g.maxpool3d(x, 2);
        assert_eq!(g.value(y).shape(), &[1, 2, 2, 2, 2]);
    }

    #[test]
    fn grad_routes_to_argmax_only() {
        let mut r = rng(2);
        // Use well-separated values so the argmax is stable under the
        // finite-difference perturbation.
        let mut x = Tensor::randn(&[1, 1, 2, 2, 2], &mut r);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v += i as f32; // strictly increasing offsets break ties
        }
        GradCheck::default()
            .check(&[x], |g, v| {
                let y = g.maxpool3d(v[0], 2);
                g.sum_all(y)
            })
            .unwrap();
    }
}
