//! Batch normalization for dense (`[N,F]`) and volumetric (`[N,C,D,H,W]`)
//! activations.
//!
//! The op normalizes per channel: the feature axis for rank-2 inputs and
//! axis 1 for rank-5 inputs. In training mode batch statistics are used and
//! also returned so the owning layer can maintain running estimates; in eval
//! mode the provided running statistics are used.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Result of a batch-norm op: the output node plus the batch statistics
/// (populated in training mode, `None` in eval mode).
pub struct BatchNormOut {
    pub out: VarId,
    pub batch_mean: Option<Tensor>,
    pub batch_var: Option<Tensor>,
}

/// Maps a flat element index of `shape` to its channel index.
fn channel_of(shape: &[usize]) -> impl Fn(usize) -> usize {
    match shape.len() {
        2 => {
            let f = shape[1];
            Box::new(move |i: usize| i % f) as Box<dyn Fn(usize) -> usize>
        }
        5 => {
            let c = shape[1];
            let spatial = shape[2] * shape[3] * shape[4];
            Box::new(move |i: usize| (i / spatial) % c)
        }
        _ => panic!("batch_norm supports rank 2 or 5, got {shape:?}"),
    }
}

fn num_channels(shape: &[usize]) -> usize {
    match shape.len() {
        2 => shape[1],
        5 => shape[1],
        _ => panic!("batch_norm supports rank 2 or 5, got {shape:?}"),
    }
}

fn per_channel_stats(x: &Tensor) -> (Tensor, Tensor) {
    let nc = num_channels(x.shape());
    let ch = channel_of(x.shape());
    let mut sums = vec![0.0f64; nc];
    let mut counts = vec![0usize; nc];
    for (i, &v) in x.data().iter().enumerate() {
        let c = ch(i);
        sums[c] += v as f64;
        counts[c] += 1;
    }
    let means: Vec<f32> =
        sums.iter().zip(&counts).map(|(&s, &n)| (s / n.max(1) as f64) as f32).collect();
    let mut sq = vec![0.0f64; nc];
    for (i, &v) in x.data().iter().enumerate() {
        let c = ch(i);
        let d = v - means[c];
        sq[c] += (d as f64) * (d as f64);
    }
    let vars: Vec<f32> =
        sq.iter().zip(&counts).map(|(&s, &n)| (s / n.max(1) as f64) as f32).collect();
    (Tensor::from_slice(&means), Tensor::from_slice(&vars))
}

impl Graph {
    /// Batch normalization.
    ///
    /// * `gamma`, `beta` — learnable per-channel scale and shift (`[C]`).
    /// * `running_mean`, `running_var` — used when `train == false`.
    /// * Returns a [`BatchNormOut`] with the batch statistics when training.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
        train: bool,
    ) -> BatchNormOut {
        let xt = self.value(x);
        let shape = xt.shape().to_vec();
        let nc = num_channels(&shape);
        assert_eq!(self.value(gamma).shape(), &[nc], "gamma must be [{nc}]");
        assert_eq!(self.value(beta).shape(), &[nc], "beta must be [{nc}]");

        let (mean, var) = if train {
            per_channel_stats(xt)
        } else {
            assert_eq!(running_mean.shape(), &[nc]);
            assert_eq!(running_var.shape(), &[nc]);
            (running_mean.clone(), running_var.clone())
        };

        let ch = channel_of(&shape);
        let inv_std: Vec<f32> = var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let gt = self.value(gamma).data().to_vec();
        let bt = self.value(beta).data().to_vec();
        let mut out = Tensor::zeros(&shape);
        let mut xhat = Tensor::zeros(&shape);
        for (i, &v) in xt.data().iter().enumerate() {
            let c = ch(i);
            let h = (v - mean.data()[c]) * inv_std[c];
            xhat.data_mut()[i] = h;
            out.data_mut()[i] = gt[c] * h + bt[c];
        }

        let shape_c = shape.clone();
        let inv_std_c = inv_std.clone();
        let batch_mean = train.then(|| mean.clone());
        let batch_var = train.then(|| var.clone());
        let out_id = self.push_op(
            vec![x, gamma, beta],
            out,
            Box::new(move |ctx| {
                let ch = channel_of(&shape_c);
                let nc = num_channels(&shape_c);
                let g = ctx.grad.data();
                let gamma_v = ctx.parents[1].data();

                // Per-channel reductions.
                let mut sum_g = vec![0.0f64; nc];
                let mut sum_gx = vec![0.0f64; nc];
                let mut counts = vec![0usize; nc];
                for (i, &gi) in g.iter().enumerate() {
                    let c = ch(i);
                    sum_g[c] += gi as f64;
                    sum_gx[c] += (gi * xhat.data()[i]) as f64;
                    counts[c] += 1;
                }

                let mut dgamma = Tensor::zeros(&[nc]);
                let mut dbeta = Tensor::zeros(&[nc]);
                for c in 0..nc {
                    dgamma.data_mut()[c] = sum_gx[c] as f32;
                    dbeta.data_mut()[c] = sum_g[c] as f32;
                }

                let mut dx = Tensor::zeros(&shape_c);
                if train {
                    // Full training-mode gradient (stats depend on x).
                    for (i, &gi) in g.iter().enumerate() {
                        let c = ch(i);
                        let m = counts[c] as f32;
                        let term = gi as f64
                            - sum_g[c] / m as f64
                            - (xhat.data()[i] as f64) * sum_gx[c] / m as f64;
                        dx.data_mut()[i] = gamma_v[c] * inv_std_c[c] * term as f32;
                    }
                } else {
                    // Eval mode: stats are constants.
                    for (i, &gi) in g.iter().enumerate() {
                        let c = ch(i);
                        dx.data_mut()[i] = gi * gamma_v[c] * inv_std_c[c];
                    }
                }
                vec![dx, dgamma, dbeta]
            }),
        );
        BatchNormOut { out: out_id, batch_mean, batch_var }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn train_mode_normalizes_per_feature() {
        let mut g = Graph::new();
        let mut r = rng(1);
        let x = g.input(Tensor::randn(&[64, 3], &mut r).scale(4.0).add_scalar(7.0));
        let gamma = g.input(Tensor::ones(&[3]));
        let beta = g.input(Tensor::zeros(&[3]));
        let rm = Tensor::zeros(&[3]);
        let rv = Tensor::ones(&[3]);
        let bn = g.batch_norm(x, gamma, beta, &rm, &rv, 1e-5, true);
        let out = g.value(bn.out);
        // Mean ≈ 0, variance ≈ 1 per column.
        for f in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| out.at(&[i, f])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
        assert!(bn.batch_mean.is_some() && bn.batch_var.is_some());
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0, 4.0], &[2, 1]));
        let gamma = g.input(Tensor::ones(&[1]));
        let beta = g.input(Tensor::zeros(&[1]));
        let rm = Tensor::from_slice(&[2.0]);
        let rv = Tensor::from_slice(&[4.0]);
        let bn = g.batch_norm(x, gamma, beta, &rm, &rv, 0.0, false);
        let out = g.value(bn.out);
        assert!((out.data()[0] - 0.0).abs() < 1e-5);
        assert!((out.data()[1] - 1.0).abs() < 1e-5);
        assert!(bn.batch_mean.is_none());
    }

    #[test]
    fn volumetric_normalizes_per_channel() {
        let mut g = Graph::new();
        let mut r = rng(2);
        let x = g.input(Tensor::randn(&[2, 3, 4, 4, 4], &mut r).add_scalar(5.0));
        let gamma = g.input(Tensor::ones(&[3]));
        let beta = g.input(Tensor::zeros(&[3]));
        let rm = Tensor::zeros(&[3]);
        let rv = Tensor::ones(&[3]);
        let bn = g.batch_norm(x, gamma, beta, &rm, &rv, 1e-5, true);
        let m = g.value(bn.out).mean();
        assert!(m.abs() < 1e-4);
    }

    #[test]
    fn grad_batch_norm_train() {
        let mut r = rng(3);
        let x = Tensor::randn(&[6, 2], &mut r);
        let gamma = Tensor::rand_uniform(&[2], 0.5, 1.5, &mut r);
        let beta = Tensor::randn(&[2], &mut r);
        GradCheck { eps: 1e-2, tol: 5e-2 }
            .check(&[x, gamma, beta], |g, v| {
                let rm = Tensor::zeros(&[2]);
                let rv = Tensor::ones(&[2]);
                let bn = g.batch_norm(v[0], v[1], v[2], &rm, &rv, 1e-3, true);
                let sq = g.square(bn.out);
                g.sum_all(sq)
            })
            .unwrap();
    }

    #[test]
    fn grad_batch_norm_eval() {
        let mut r = rng(4);
        let x = Tensor::randn(&[4, 3], &mut r);
        let gamma = Tensor::rand_uniform(&[3], 0.5, 1.5, &mut r);
        let beta = Tensor::randn(&[3], &mut r);
        GradCheck::default()
            .check(&[x, gamma, beta], |g, v| {
                let rm = Tensor::from_slice(&[0.1, -0.2, 0.3]);
                let rv = Tensor::from_slice(&[1.1, 0.9, 1.4]);
                let bn = g.batch_norm(v[0], v[1], v[2], &rm, &rv, 1e-3, false);
                let sq = g.square(bn.out);
                g.sum_all(sq)
            })
            .unwrap();
    }
}

impl Graph {
    /// Per-row RMS normalization: `y = x / sqrt(mean(x²) + eps)` over each
    /// row of a rank-2 tensor. A parameter-free stabilizer for
    /// unbounded-scale activations (the fusion model applies it to the
    /// heads' latent vectors before the fusion layers).
    pub fn rms_norm_rows(&mut self, x: VarId, eps: f32) -> VarId {
        let xt = self.value(x);
        assert_eq!(xt.rank(), 2, "rms_norm_rows requires rank 2, got {:?}", xt.shape());
        let (m, n) = (xt.shape()[0], xt.shape()[1]);
        let rms: Vec<f32> = (0..m)
            .map(|r| {
                let row = &xt.data()[r * n..(r + 1) * n];
                let ms: f32 = row.iter().map(|&v| v * v).sum::<f32>() / n as f32;
                (ms + eps).sqrt()
            })
            .collect();
        let mut out = xt.clone();
        for (r, &scale) in rms.iter().enumerate() {
            for v in &mut out.data_mut()[r * n..(r + 1) * n] {
                *v /= scale;
            }
        }
        self.push_op(
            vec![x],
            out,
            Box::new(move |ctx| {
                let xd = ctx.parents[0].data();
                let gd = ctx.grad.data();
                let mut dx = Tensor::zeros(&[m, n]);
                for r in 0..m {
                    let xr = &xd[r * n..(r + 1) * n];
                    let gr = &gd[r * n..(r + 1) * n];
                    let dot: f32 = xr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    let r3 = rms[r] * rms[r] * rms[r];
                    let drow = &mut dx.data_mut()[r * n..(r + 1) * n];
                    for ((d, &xi), &gi) in drow.iter_mut().zip(xr).zip(gr) {
                        *d = gi / rms[r] - xi * dot / (n as f32 * r3);
                    }
                }
                vec![dx]
            }),
        )
    }
}

#[cfg(test)]
mod rms_tests {
    use crate::graph::Graph;
    use crate::ops::GradCheck;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    #[test]
    fn rms_norm_bounds_row_scale() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![30.0, 40.0, 0.3, 0.4], &[2, 2]));
        let y = g.rms_norm_rows(x, 1e-6);
        let out = g.value(y);
        // Each row is scaled to unit RMS regardless of input magnitude.
        for r in 0..2 {
            let ms: f32 = (0..2).map(|c| out.at(&[r, c]).powi(2)).sum::<f32>() / 2.0;
            assert!((ms - 1.0).abs() < 1e-4, "row {r} ms {ms}");
        }
        // Direction preserved.
        assert!(out.at(&[0, 1]) / out.at(&[0, 0]) - 40.0 / 30.0 < 1e-5);
    }

    #[test]
    fn grad_rms_norm() {
        let mut r = rng(6);
        let x = Tensor::randn(&[3, 5], &mut r).scale(3.0);
        GradCheck { eps: 1e-2, tol: 3e-2 }
            .check(&[x], |g, v| {
                let y = g.rms_norm_rows(v[0], 1e-4);
                let sq = g.square(y);
                g.sum_all(sq)
            })
            .unwrap();
    }
}
