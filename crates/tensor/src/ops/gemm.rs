//! Packed, cache-blocked f32 GEMM — the single dense kernel behind
//! [`crate::tensor::Tensor::matmul`] and the im2col-lowered conv3d passes.
//!
//! Structure (classic three-loop blocking, BLIS-style):
//!
//! * B is packed **once per call** on the calling thread into NR-wide
//!   column panels, k-major, zero-padded to a whole panel
//!   ([`crate::scratch::Slot::PackB`]).
//! * Rows of C are split into pool bands aligned to MR
//!   (`dfpool::Pool::parallel_rows_aligned`); each band walks KC-deep k
//!   blocks in ascending order, packs MC×KC A panels on the worker thread
//!   ([`crate::scratch::Slot::PackA`]) and runs an MR×NR register-tile
//!   micro-kernel.
//!
//! ## Determinism contract
//!
//! Every output element is produced by a **single accumulator folded over k
//! in ascending order** with plain `mul` + `add` (no FMA contraction, no
//! reassociation). KC blocking preserves this bit pattern because the
//! micro-kernel reloads the partial C tile and continues the same fold;
//! band parallelism only partitions *disjoint* output rows. A GEMM is
//! therefore bit-identical to the naive triple loop in
//! [`crate::ops::reference`] and across any pool thread count — locked by
//! `tests/parallel_determinism.rs` and the kernel proptests.
//!
//! There is deliberately **no zero-skip** (`a == 0.0 → continue`) on this
//! path: dense training batches pay the branch on every element and skip
//! almost nothing. Skipping is also bit-neutral (adding `±0.0` products
//! never changes a finite accumulator that started at `+0.0`), so removing
//! the old skip changed no results. Sparse callers (`ops/segment.rs`) never
//! routed through matmul, so no sparse entry point is kept.

use crate::scratch::{self, Slot};

/// Register-tile rows (micro-kernel height). C bands are MR-aligned.
pub(crate) const MR: usize = 4;
/// Register-tile columns (micro-kernel width); two 4-lane SSE vectors.
pub(crate) const NR: usize = 8;
/// k-dimension cache block: `KC × NR` B panel ≈ 8 KiB stays L1-resident.
pub(crate) const KC: usize = 256;
/// Row cache block: `MC × KC` A pack ≈ 64 KiB stays L2-resident.
pub(crate) const MC: usize = 64;

/// GEMMs below this many multiply-adds run inline on the calling thread
/// even when a pool is installed: at small sizes the band hand-off costs
/// more than it buys (the `tensor_matmul_160` regression in
/// `BENCH_parallel.json`). 160³ ≈ 4.1 M MACs sits under this; 512³ is
/// ~16× over it.
const SERIAL_CUTOFF_MACS: usize = 8 << 20;

/// Minimum multiply-adds per parallel band above the cutoff, so bands stay
/// coarse enough to amortize scheduling.
const BAND_MIN_MACS: usize = 2 << 20;

/// Operand layouts. `m/k/n` below are always the *logical* GEMM dims:
/// `C[m,n] = op(A)[m,k] · op(B)[k,n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `A[m,k] · B[k,n]`
    Nn,
    /// `Aᵀ` with `A[k,m]` stored row-major: `C = Aᵀ · B`
    Tn,
    /// `Bᵀ` with `B[n,k]` stored row-major: `C = A · Bᵀ`
    Nt,
}

/// `C[m,n] (+)= op(A) · op(B)`.
///
/// * `a`/`b` are row-major in their *stored* shapes (see [`Layout`]).
/// * `accumulate == false` overwrites `c` (its prior contents are ignored
///   except when `k == 0`, where it is zero-filled); `accumulate == true`
///   continues each element's fold from the existing value, in ascending-k
///   order — used by conv3d's weight gradient to sum over the batch.
#[allow(clippy::too_many_arguments)] // one arg per GEMM dimension/operand; a params struct would only obscure the BLAS shape
pub(crate) fn gemm(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    dftrace::counter_add("tensor.gemm.calls", 1);
    dftrace::counter_add("tensor.gemm.macs", (m * n * k) as u64);

    let n_panels = n.div_ceil(NR);
    scratch::with(Slot::PackB, n_panels * k * NR, |bpack| {
        {
            let _s = dftrace::span("tensor.gemm.pack_b");
            pack_b(layout, b, k, n, bpack);
        }
        let macs = m * n * k;
        let pool = dfpool::current();
        // Below the cutoff the band covers all rows, so the pool runs the
        // job inline on the calling thread — the bit-identical serial path.
        // Above it, fan out at most one band per *usable* lane: GEMM tiles
        // are uniform work, so bands beyond min(pool threads, host cores)
        // only add scheduling overhead.
        let lanes = pool.threads().min(dfpool::host_parallelism()).max(1);
        let min_rows = if macs < SERIAL_CUTOFF_MACS {
            m
        } else {
            (BAND_MIN_MACS / (n * k).max(1)).max(MR).max(m.div_ceil(lanes))
        };
        let _s = dftrace::span("tensor.gemm.compute");
        let bpack: &[f32] = bpack;
        pool.parallel_rows_aligned(c, n, min_rows, MR, |first, band| {
            band_job(layout, a, bpack, k, n, first, band, accumulate);
        });
    });
}

/// `C = A · B` (both row-major, `A[m,k]`, `B[k,n]`).
pub(crate) fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Nn, m, k, n, a, b, c, false);
}

/// `C = Aᵀ · B` with `A` stored `[k,m]` row-major.
pub(crate) fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Tn, m, k, n, a, b, c, false);
}

/// `C = A · Bᵀ` with `B` stored `[n,k]` row-major.
pub(crate) fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Nt, m, k, n, a, b, c, false);
}

/// Packs all of `op(B)` into NR-column panels, k-major within a panel:
/// `bpack[(jp*k + p)*NR + c] = op(B)[p, jp*NR + c]`, zero beyond column n.
fn pack_b(layout: Layout, b: &[f32], k: usize, n: usize, bpack: &mut [f32]) {
    let n_panels = n.div_ceil(NR);
    match layout {
        // B stored [k, n] row-major.
        Layout::Nn | Layout::Tn => {
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let nr = (n - j0).min(NR);
                let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[p * n + j0..p * n + j0 + nr];
                    dst[..nr].copy_from_slice(src);
                    dst[nr..].fill(0.0);
                }
            }
        }
        // B stored [n, k] row-major; op(B)[p, j] = b[j*k + p].
        Layout::Nt => {
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let nr = (n - j0).min(NR);
                let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    for (c, d) in dst.iter_mut().enumerate() {
                        *d = if c < nr { b[(j0 + c) * k + p] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Packs an `mcb × kcb` block of `op(A)` (rows `row0..row0+mcb`, k range
/// `pc..pc+kcb`) into MR-row panels, k-major within a panel:
/// `apack[(ip*kcb + pp)*MR + r] = op(A)[row0 + ip*MR + r, pc + pp]`,
/// zero-padded past `mcb` rows.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    apack: &mut [f32],
) {
    let m_panels = mcb.div_ceil(MR);
    match layout {
        // A stored [m, k] row-major; op(A)[i, p] = a[i*k + p].
        Layout::Nn | Layout::Nt => {
            for ip in 0..m_panels {
                let panel = &mut apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                for r in 0..MR {
                    let i = row0 + ip * MR + r;
                    if ip * MR + r < mcb {
                        let src = &a[i * k + pc..i * k + pc + kcb];
                        for (pp, &v) in src.iter().enumerate() {
                            panel[pp * MR + r] = v;
                        }
                    } else {
                        for pp in 0..kcb {
                            panel[pp * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
        // A stored [k, m] row-major; op(A)[i, p] = a[p*m + i].
        Layout::Tn => {
            for ip in 0..m_panels {
                let i0 = row0 + ip * MR;
                let valid = (mcb - ip * MR).min(MR);
                let panel = &mut apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                for (pp, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(pc + pp) * m + i0..(pc + pp) * m + i0 + valid];
                    dst[..valid].copy_from_slice(src);
                    dst[valid..].fill(0.0);
                }
            }
        }
    }
}

/// One pool band: all KC blocks (ascending), all MC blocks, all tiles.
#[allow(clippy::too_many_arguments)]
fn band_job(
    layout: Layout,
    a: &[f32],
    bpack: &[f32],
    k: usize,
    n: usize,
    first_row: usize,
    band: &mut [f32],
    accumulate: bool,
) {
    let rows = band.len() / n;
    let n_panels = n.div_ceil(NR);
    // Total op(A) rows, needed for the Tn column stride.
    let m = a.len() / k;
    let mut pc = 0;
    while pc < k {
        let kcb = (k - pc).min(KC);
        // First KC block initializes each element's fold (unless the call
        // accumulates into existing C); later blocks continue it.
        let load_c = accumulate || pc > 0;
        let mut ic = 0;
        while ic < rows {
            let mcb = (rows - ic).min(MC);
            let m_panels = mcb.div_ceil(MR);
            scratch::with(Slot::PackA, m_panels * kcb * MR, |apack| {
                {
                    let _s = dftrace::span("tensor.gemm.pack_a");
                    pack_a(layout, a, m, k, first_row + ic, mcb, pc, kcb, apack);
                }
                let _s = dftrace::span("tensor.gemm.kernel");
                for ip in 0..m_panels {
                    let mr = (mcb - ip * MR).min(MR);
                    let ap = &apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                    for jp in 0..n_panels {
                        let nr = (n - jp * NR).min(NR);
                        let bp = &bpack[(jp * k + pc) * NR..(jp * k + pc + kcb) * NR];
                        let c_off = (ic + ip * MR) * n + jp * NR;
                        micro_kernel(ap, bp, band, c_off, n, mr, nr, load_c);
                    }
                }
            });
            ic += mcb;
        }
        pc += kcb;
    }
}

/// MR×NR register tile: `C_tile (+)= A_panel · B_panel` over one KC block,
/// k ascending. Computes the full padded tile (padded lanes are zeros) but
/// loads/stores only the valid `mr × nr` region.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    load_c: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if load_c {
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            let row = &c[c_off + r * ldc..c_off + r * ldc + nr];
            accr[..nr].copy_from_slice(row);
        }
    }
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (cc, x) in accr.iter_mut().enumerate() {
                *x += av * brow[cc];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let row = &mut c[c_off + r * ldc..c_off + r * ldc + nr];
        row.copy_from_slice(&accr[..nr]);
    }
}
