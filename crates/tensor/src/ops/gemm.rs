//! Packed, cache-blocked f32 GEMM — the single dense kernel behind
//! [`crate::tensor::Tensor::matmul`] and the im2col-lowered conv3d passes.
//!
//! Structure (classic three-loop blocking, BLIS-style):
//!
//! * B is packed **once per call** on the calling thread into NR-wide
//!   column panels, k-major, zero-padded to a whole panel
//!   ([`crate::scratch::Slot::PackB`]).
//! * C is partitioned into a grid of MC/NC-aligned **macro-tiles**
//!   (`dfpool::Pool::parallel_tiles`); each tile walks KC-deep k blocks in
//!   ascending order, packs MC×KC A panels on the worker thread
//!   ([`crate::scratch::Slot::PackA`]) and runs an MR×NR register-tile
//!   micro-kernel ([`crate::ops::microkernel`]) — scalar or explicit-SIMD,
//!   chosen once per call.
//!
//! The grid prefers row splits (they reuse the packed B panels best) and
//! only splits columns when the row count alone cannot feed every usable
//! lane — the shape of conv3d's weight-gradient GEMM (`m = out_channels`,
//! tiny; `n = C·k³`, wide), which row bands could never scale. When only
//! one lane is usable (single-thread pool, or a host with fewer cores than
//! the pool has threads), the kernel runs **inline on the calling thread
//! without touching the pool at all** — the pooled path has zero structural
//! overhead over serial, which is what the `kernel_bench` pooled-regression
//! guard measures.
//!
//! ## Determinism contract
//!
//! Every output element is produced by a **single accumulator folded over k
//! in ascending order** with plain `mul` + `add` (no FMA contraction, no
//! reassociation) — in every micro-kernel edition; see
//! [`crate::ops::microkernel`] for why the SIMD folds are bit-identical.
//! KC blocking preserves the bit pattern because the micro-kernel reloads
//! the partial C tile and continues the same fold; macro-tile parallelism
//! only partitions *disjoint* output elements. A GEMM is therefore
//! bit-identical to the naive triple loop in [`crate::ops::reference`],
//! across any pool thread count and any micro-kernel edition — locked by
//! `tests/parallel_determinism.rs` and the kernel proptests.
//!
//! There is deliberately **no zero-skip** (`a == 0.0 → continue`) on this
//! path: dense training batches pay the branch on every element and skip
//! almost nothing. Skipping is also bit-neutral (adding `±0.0` products
//! never changes a finite accumulator that started at `+0.0`), so removing
//! the old skip changed no results. Sparse callers (`ops/segment.rs`) never
//! routed through matmul, so no sparse entry point is kept.

use crate::ops::microkernel::{self, Path};
use crate::scratch::{self, Slot};
use dfpool::Tile;

pub(crate) use crate::ops::microkernel::{MR, NR};

/// k-dimension cache block: `KC × NR` B panel ≈ 8 KiB stays L1-resident.
pub(crate) const KC: usize = 256;
/// Row cache block: `MC × KC` A pack ≈ 64 KiB stays L2-resident.
pub(crate) const MC: usize = 64;

/// GEMMs below this many multiply-adds run inline on the calling thread
/// even when a pool is installed: at small sizes the tile hand-off costs
/// more than it buys (the `tensor_matmul_160` regression in
/// `BENCH_parallel.json`). 160³ ≈ 4.1 M MACs sits under this; 512³ is
/// ~16× over it.
const SERIAL_CUTOFF_MACS: usize = 8 << 20;

/// Minimum multiply-adds per macro-tile above the cutoff, so tiles stay
/// coarse enough to amortize scheduling.
const TILE_MIN_MACS: usize = 2 << 20;

/// Operand layouts. `m/k/n` below are always the *logical* GEMM dims:
/// `C[m,n] = op(A)[m,k] · op(B)[k,n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `A[m,k] · B[k,n]`
    Nn,
    /// `Aᵀ` with `A[k,m]` stored row-major: `C = Aᵀ · B`
    Tn,
    /// `Bᵀ` with `B[n,k]` stored row-major: `C = A · Bᵀ`
    Nt,
}

/// `C[m,n] (+)= op(A) · op(B)`.
///
/// * `a`/`b` are row-major in their *stored* shapes (see [`Layout`]).
/// * `accumulate == false` overwrites `c` (its prior contents are ignored
///   except when `k == 0`, where it is zero-filled); `accumulate == true`
///   continues each element's fold from the existing value, in ascending-k
///   order — used by conv3d's weight gradient to sum over the batch.
#[allow(clippy::too_many_arguments)] // one arg per GEMM dimension/operand; a params struct would only obscure the BLAS shape
pub(crate) fn gemm(
    layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    dftrace::counter_add("tensor.gemm.calls", 1);
    dftrace::counter_add("tensor.gemm.macs", (m * n * k) as u64);
    // The micro-kernel edition is resolved once per call, on the calling
    // thread (so a per-thread test override is honored), then captured
    // into the tile jobs so every lane computes with the same edition.
    let path = microkernel::resolve();
    match path {
        Path::Scalar => dftrace::counter_add("tensor.gemm.scalar_calls", 1),
        _ => dftrace::counter_add("tensor.gemm.simd_calls", 1),
    }

    let n_panels = n.div_ceil(NR);
    scratch::with(Slot::PackB, n_panels * k * NR, |bpack| {
        {
            let _s = dftrace::span("tensor.gemm.pack_b");
            pack_b(layout, b, k, n, bpack);
        }
        let macs = m * n * k;
        let pool = dfpool::current();
        // Fan out at most one tile per *usable* lane: GEMM tiles are
        // uniform work, so tiles beyond min(pool threads, host cores) only
        // add scheduling overhead.
        let lanes = pool.threads().min(dfpool::host_parallelism()).max(1);
        let _s = dftrace::span("tensor.gemm.compute");
        let bpack: &[f32] = bpack;
        if lanes == 1 || macs < SERIAL_CUTOFF_MACS {
            // One usable lane (or too small to split): run on the calling
            // thread without involving the pool — bit- and cost-identical
            // to the serial path.
            tile_job(path, layout, a, bpack, k, Tile::full(c, n), accumulate);
            return;
        }
        let (row_splits, col_splits) = tile_grid(m, k, n, lanes);
        pool.parallel_tiles(c, n, &row_splits, &col_splits, |tile| {
            tile_job(path, layout, a, bpack, k, tile, accumulate);
        });
    });
}

/// Chooses the macro-tile grid: row splits first (MR-aligned, best B-panel
/// reuse), column splits (NR-aligned) only when rows alone cannot feed the
/// lanes, with every tile kept above [`TILE_MIN_MACS`].
fn tile_grid(m: usize, k: usize, n: usize, lanes: usize) -> (Vec<usize>, Vec<usize>) {
    let budget = (m * n * k / TILE_MIN_MACS).max(1);
    let target = lanes.min(budget);
    let row_tiles = target.min(m.div_ceil(MR)).max(1);
    let col_tiles = if row_tiles < target {
        target.div_ceil(row_tiles).min(n.div_ceil(NR)).min(budget / row_tiles).max(1)
    } else {
        1
    };
    (splits(m, row_tiles, MR), splits(n, col_tiles, NR))
}

/// Ascending boundary list cutting `total` into at most `parts` pieces,
/// every boundary a multiple of `align`.
fn splits(total: usize, parts: usize, align: usize) -> Vec<usize> {
    let step = total.div_ceil(parts).div_ceil(align) * align;
    let mut out = Vec::with_capacity(parts + 1);
    let mut at = 0;
    while at < total {
        out.push(at);
        at += step;
    }
    out.push(total);
    out
}

/// `C = A · B` (both row-major, `A[m,k]`, `B[k,n]`).
pub(crate) fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Nn, m, k, n, a, b, c, false);
}

/// `C = Aᵀ · B` with `A` stored `[k,m]` row-major.
pub(crate) fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Tn, m, k, n, a, b, c, false);
}

/// `C = A · Bᵀ` with `B` stored `[n,k]` row-major.
pub(crate) fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Layout::Nt, m, k, n, a, b, c, false);
}

/// Packs all of `op(B)` into NR-column panels, k-major within a panel:
/// `bpack[(jp*k + p)*NR + c] = op(B)[p, jp*NR + c]`, zero beyond column n.
fn pack_b(layout: Layout, b: &[f32], k: usize, n: usize, bpack: &mut [f32]) {
    let n_panels = n.div_ceil(NR);
    match layout {
        // B stored [k, n] row-major.
        Layout::Nn | Layout::Tn => {
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let nr = (n - j0).min(NR);
                let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[p * n + j0..p * n + j0 + nr];
                    dst[..nr].copy_from_slice(src);
                    dst[nr..].fill(0.0);
                }
            }
        }
        // B stored [n, k] row-major; op(B)[p, j] = b[j*k + p].
        Layout::Nt => {
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let nr = (n - j0).min(NR);
                let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    for (c, d) in dst.iter_mut().enumerate() {
                        *d = if c < nr { b[(j0 + c) * k + p] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Packs an `mcb × kcb` block of `op(A)` (rows `row0..row0+mcb`, k range
/// `pc..pc+kcb`) into MR-row panels, k-major within a panel:
/// `apack[(ip*kcb + pp)*MR + r] = op(A)[row0 + ip*MR + r, pc + pp]`,
/// zero-padded past `mcb` rows.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    apack: &mut [f32],
) {
    let m_panels = mcb.div_ceil(MR);
    match layout {
        // A stored [m, k] row-major; op(A)[i, p] = a[i*k + p].
        Layout::Nn | Layout::Nt => {
            for ip in 0..m_panels {
                let panel = &mut apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                for r in 0..MR {
                    let i = row0 + ip * MR + r;
                    if ip * MR + r < mcb {
                        let src = &a[i * k + pc..i * k + pc + kcb];
                        for (pp, &v) in src.iter().enumerate() {
                            panel[pp * MR + r] = v;
                        }
                    } else {
                        for pp in 0..kcb {
                            panel[pp * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
        // A stored [k, m] row-major; op(A)[i, p] = a[p*m + i].
        Layout::Tn => {
            for ip in 0..m_panels {
                let i0 = row0 + ip * MR;
                let valid = (mcb - ip * MR).min(MR);
                let panel = &mut apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                for (pp, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(pc + pp) * m + i0..(pc + pp) * m + i0 + valid];
                    dst[..valid].copy_from_slice(src);
                    dst[valid..].fill(0.0);
                }
            }
        }
    }
}

/// One macro-tile: all KC blocks (ascending), all MC blocks, all register
/// tiles inside the tile's row/column rectangle.
#[allow(clippy::too_many_arguments)]
fn tile_job(
    path: Path,
    layout: Layout,
    a: &[f32],
    bpack: &[f32],
    k: usize,
    mut tile: Tile<'_, f32>,
    accumulate: bool,
) {
    let rows = tile.rows();
    let first_row = tile.first_row();
    let first_col = tile.first_col();
    let cols = tile.cols();
    debug_assert_eq!(first_col % NR, 0, "column splits are NR-aligned");
    let jp0 = first_col / NR;
    let jp1 = (first_col + cols).div_ceil(NR);
    // Total op(A) rows, needed for the Tn column stride.
    let m = a.len() / k;
    let mut pc = 0;
    while pc < k {
        let kcb = (k - pc).min(KC);
        // First KC block initializes each element's fold (unless the call
        // accumulates into existing C); later blocks continue it.
        let load_c = accumulate || pc > 0;
        let mut ic = 0;
        while ic < rows {
            let mcb = (rows - ic).min(MC);
            let m_panels = mcb.div_ceil(MR);
            scratch::with(Slot::PackA, m_panels * kcb * MR, |apack| {
                {
                    let _s = dftrace::span("tensor.gemm.pack_a");
                    pack_a(layout, a, m, k, first_row + ic, mcb, pc, kcb, apack);
                }
                let _s = dftrace::span("tensor.gemm.kernel");
                let paired = microkernel::folds_pairs(path);
                for ip in 0..m_panels {
                    let mr = (mcb - ip * MR).min(MR);
                    let ap = &apack[ip * kcb * MR..(ip + 1) * kcb * MR];
                    let row0 = ic + ip * MR;
                    let mut jp = jp0;
                    while jp < jp1 {
                        let col0 = jp * NR - first_col;
                        // Wide editions take two full panels per call (16
                        // output columns); remainders and narrow editions
                        // go one panel at a time. Either way each output
                        // element keeps its own ascending-k fold.
                        if paired && (jp + 2) * NR <= first_col + cols {
                            let bp0 = &bpack[(jp * k + pc) * NR..(jp * k + pc + kcb) * NR];
                            let jq = jp + 1;
                            let bp1 = &bpack[(jq * k + pc) * NR..(jq * k + pc + kcb) * NR];
                            micro_kernel_pair(
                                path, ap, bp0, bp1, &mut tile, row0, col0, mr, load_c,
                            );
                            jp += 2;
                            continue;
                        }
                        let nr = (first_col + cols - jp * NR).min(NR);
                        let bp = &bpack[(jp * k + pc) * NR..(jp * k + pc + kcb) * NR];
                        micro_kernel(path, ap, bp, &mut tile, row0, col0, mr, nr, load_c);
                        jp += 1;
                    }
                }
            });
            ic += mcb;
        }
        pc += kcb;
    }
}

/// MR×NR register tile: `C_tile (+)= A_panel · B_panel` over one KC block,
/// k ascending. Computes the full padded tile (padded lanes are zeros) but
/// loads/stores only the valid `mr × nr` region, through the macro-tile's
/// row views.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    path: Path,
    ap: &[f32],
    bp: &[f32],
    tile: &mut Tile<'_, f32>,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    load_c: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if load_c {
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            accr[..nr].copy_from_slice(&tile.row(row0 + r)[col0..col0 + nr]);
        }
    }
    microkernel::fold(path, &mut acc, ap, bp);
    for (r, accr) in acc.iter().enumerate().take(mr) {
        tile.row_mut(row0 + r)[col0..col0 + nr].copy_from_slice(&accr[..nr]);
    }
}

/// MR × 2·NR register tile over two adjacent full-width B panels — the
/// wide-edition fast path (see [`microkernel::folds_pairs`]). All 2·NR
/// columns are valid by the caller's bounds check, so loads/stores cover
/// the whole strip for the valid `mr` rows.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_pair(
    path: Path,
    ap: &[f32],
    bp0: &[f32],
    bp1: &[f32],
    tile: &mut Tile<'_, f32>,
    row0: usize,
    col0: usize,
    mr: usize,
    load_c: bool,
) {
    let mut acc = [[0.0f32; 2 * NR]; MR];
    if load_c {
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            accr.copy_from_slice(&tile.row(row0 + r)[col0..col0 + 2 * NR]);
        }
    }
    microkernel::fold_pair(path, &mut acc, ap, bp0, bp1);
    for (r, accr) in acc.iter().enumerate().take(mr) {
        tile.row_mut(row0 + r)[col0..col0 + 2 * NR].copy_from_slice(accr);
    }
}
