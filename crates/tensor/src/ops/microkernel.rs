//! The MR×NR register-tile fold at the heart of the packed GEMM, in
//! scalar and (behind the `simd` feature) explicit-SIMD editions.
//!
//! Every edition computes the **same fold**: for each of the MR tile rows,
//! one accumulator lane per column, advanced over k in ascending order with
//! a plain multiply followed by a plain add. The SIMD paths vectorize
//! *across the NR columns* — lanes of one vector are distinct output
//! elements — so no float operation is reordered, fused or reassociated
//! relative to the scalar loop: `_mm256_mul_ps`/`_mm256_add_ps` (and the
//! SSE2/NEON equivalents) are lane-wise IEEE-754 correctly-rounded
//! operations, bit-identical to the scalar `mul`/`add` pair. FMA is
//! deliberately never used — a fused `a*b+c` rounds once instead of twice
//! and would break the bitwise contract with
//! [`crate::ops::reference`].
//!
//! ## Dispatch
//!
//! [`detected`] probes the host once (AVX via `is_x86_feature_detected!`,
//! SSE2 as the x86_64 baseline, NEON as the aarch64 baseline) and is
//! compiled to [`Path::Scalar`] when the `simd` feature is off, so the
//! scalar edition is always present and always the fallback. Tests and
//! benches pin a specific edition with [`with_forced`]; the override is
//! thread-local and read once at GEMM entry (then captured into the pool
//! jobs), so concurrent tests forcing different paths never race.

use std::sync::OnceLock;

/// Register-tile rows (micro-kernel height). C tiles are MR-aligned.
pub const MR: usize = 4;
/// Register-tile columns (micro-kernel width): one 8-lane AVX vector, or
/// two 4-lane SSE2/NEON vectors.
pub const NR: usize = 8;

/// One edition of the register-tile fold. All variants exist on every
/// platform so call sites can match exhaustively; `sanitize` maps a
/// variant the current build/host cannot execute back to [`Path::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Plain scalar loop — always available, the reference edition.
    Scalar,
    /// x86_64 SSE2 (baseline on that arch): two 4-lane vectors per row.
    Sse2,
    /// x86_64 AVX (runtime-detected): one 8-lane vector per row.
    Avx,
    /// x86_64 AVX-512F (runtime-detected): one 16-lane vector per row
    /// spanning two B panels (see `fold_pair`).
    Avx512,
    /// aarch64 NEON (baseline on that arch): two 4-lane vectors per row.
    Neon,
}

impl Path {
    /// Short lowercase label (`scalar`, `sse2`, `avx`, `avx512`, `neon`)
    /// for reports.
    pub fn label(self) -> &'static str {
        match self {
            Path::Scalar => "scalar",
            Path::Sse2 => "sse2",
            Path::Avx => "avx",
            Path::Avx512 => "avx512",
            Path::Neon => "neon",
        }
    }
}

/// The widest edition this build can execute on this host. Without the
/// `simd` feature this is always [`Path::Scalar`].
pub fn detected() -> Path {
    static DETECTED: OnceLock<Path> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect() -> Path {
    if std::arch::is_x86_feature_detected!("avx512f") {
        Path::Avx512
    } else if std::arch::is_x86_feature_detected!("avx") {
        Path::Avx
    } else {
        // SSE2 is part of the x86_64 baseline; no runtime probe needed.
        Path::Sse2
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
fn detect() -> Path {
    // NEON is part of the aarch64 baseline.
    Path::Neon
}

#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn detect() -> Path {
    Path::Scalar
}

/// Every edition executable by this build on this host, scalar first.
/// Differential tests iterate this to prove SIMD == scalar == reference.
pub fn available_paths() -> Vec<Path> {
    let mut paths = vec![Path::Scalar];
    match detected() {
        Path::Scalar => {}
        // Each x86 tier implies the narrower ones: exercise every width.
        Path::Avx => paths.extend([Path::Sse2, Path::Avx]),
        Path::Avx512 => paths.extend([Path::Sse2, Path::Avx, Path::Avx512]),
        p => paths.push(p),
    }
    paths
}

/// Clamps a requested path to what this build/host can execute.
fn sanitize(p: Path) -> Path {
    let widest = detected();
    match (p, widest) {
        (Path::Scalar, _) => Path::Scalar,
        (Path::Sse2, Path::Sse2 | Path::Avx | Path::Avx512) => Path::Sse2,
        (Path::Avx, Path::Avx | Path::Avx512) => Path::Avx,
        (Path::Avx512, Path::Avx512) => Path::Avx512,
        (Path::Neon, Path::Neon) => Path::Neon,
        _ => Path::Scalar,
    }
}

thread_local! {
    /// Per-thread override installed by [`with_forced`].
    static FORCED: std::cell::Cell<Option<Path>> = const { std::cell::Cell::new(None) };
}

/// The edition the next GEMM call on this thread will use: the
/// [`with_forced`] override if one is installed, else [`detected`].
pub fn resolve() -> Path {
    sanitize(FORCED.with(|f| f.get()).unwrap_or_else(detected))
}

/// Runs `f` with the micro-kernel edition pinned to `path` on this thread
/// (clamped to what the build/host supports). GEMM reads the override once
/// at entry and threads it through its pool jobs, so the pin applies to
/// pooled execution too, and concurrent threads can pin different editions
/// without racing.
pub fn with_forced<R>(path: Path, f: impl FnOnce() -> R) -> R {
    let prev = FORCED.with(|c| c.replace(Some(path)));
    struct Restore(Option<Path>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Advances the MR×NR accumulator tile over one KC block: for each k step
/// `p`, `acc[r][c] += ap[p*MR + r] * bp[p*NR + c]`, in ascending-`p` order.
/// `ap`/`bp` are the packed A/B panels (`kcb*MR` / `kcb*NR` long).
#[inline]
pub(crate) fn fold(path: Path, acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    debug_assert_eq!(ap.len() / MR, bp.len() / NR);
    match path {
        Path::Scalar => fold_scalar(acc, ap, bp),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `resolve`/`sanitize` only yield these paths when the
        // host supports them (SSE2 is baseline, AVX runtime-detected).
        Path::Sse2 => unsafe { fold_sse2(acc, ap, bp) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // A lone NR-wide panel can't fill a 16-lane vector; the AVX-512
        // edition handles remainders with the (always-available-there)
        // 8-lane AVX fold and spends its width in `fold_pair`.
        Path::Avx | Path::Avx512 => unsafe { fold_avx(acc, ap, bp) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is part of the aarch64 baseline.
        Path::Neon => unsafe { fold_neon(acc, ap, bp) },
        #[allow(unreachable_patterns)] // editions compiled out of this build
        _ => fold_scalar(acc, ap, bp),
    }
}

/// True when `path` has a dedicated two-panel fold: wider vectors
/// (AVX-512 spans both panels with one 16-lane register per row) or more
/// independent accumulator chains than one NR panel can feed (AVX: 8
/// chains cover the 4-cycle add latency that 4 chains leave exposed).
/// SSE2 and NEON already run 8 chains per single panel, and the scalar
/// edition is whatever the compiler makes of the plain loop — pairing
/// buys neither anything.
#[inline]
pub(crate) fn folds_pairs(path: Path) -> bool {
    matches!(path, Path::Avx | Path::Avx512)
}

/// Advances an MR × 2·NR accumulator tile over one KC block, reading two
/// adjacent packed B panels: for each k step `p`,
/// `acc[r][c] += ap[p*MR + r] * bp01[p*NR + c mod NR]` with columns
/// `0..NR` from `bp0` and `NR..2·NR` from `bp1`, in ascending-`p` order.
/// Exactly the fold [`fold`] performs on each panel separately — every
/// output element keeps its own lane and its own ascending-k chain — just
/// scheduled to feed wider registers / more chains per instruction.
#[inline]
pub(crate) fn fold_pair(
    path: Path,
    acc: &mut [[f32; 2 * NR]; MR],
    ap: &[f32],
    bp0: &[f32],
    bp1: &[f32],
) {
    match path {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `resolve`/`sanitize` only yield these paths when the
        // host supports them.
        Path::Avx => unsafe { fold_pair_avx(acc, ap, bp0, bp1) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Path::Avx512 => unsafe { fold_pair_avx512(acc, ap, bp0, bp1) },
        // Editions without a paired kernel (and builds that compiled the
        // SIMD ones out): run the two panels through the single fold.
        _ => {
            let mut half = [[0.0f32; NR]; MR];
            for (bp, off) in [(bp0, 0), (bp1, NR)] {
                for (h, a) in half.iter_mut().zip(acc.iter()) {
                    h.copy_from_slice(&a[off..off + NR]);
                }
                fold(path, &mut half, ap, bp);
                for (h, a) in half.iter().zip(acc.iter_mut()) {
                    a[off..off + NR].copy_from_slice(h);
                }
            }
        }
    }
}

/// The reference edition: plain nested loops, ascending k.
fn fold_scalar(acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (cc, x) in accr.iter_mut().enumerate() {
                *x += av * brow[cc];
            }
        }
    }
}

/// AVX edition: one 8-lane register per accumulator row (NR == 8), rows
/// held in registers across the whole KC block.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn fold_avx(acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(NR, 8);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let k = bp.len() / NR;
    for p in 0..k {
        let b = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
        let a = ap.as_ptr().add(p * MR);
        // mul then add, kept as two correctly-rounded ops (never FMA).
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a), b));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a.add(1)), b));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a.add(2)), b));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a.add(3)), b));
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

/// Paired AVX edition: two 8-lane registers per accumulator row (8
/// independent add chains — enough to hide the 4-cycle `vaddps` latency
/// that the 4 chains of the single-panel kernel leave exposed).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn fold_pair_avx(acc: &mut [[f32; 2 * NR]; MR], ap: &[f32], bp0: &[f32], bp1: &[f32]) {
    use core::arch::x86_64::*;
    let mut c = [[_mm256_setzero_ps(); 2]; MR];
    for (cr, accr) in c.iter_mut().zip(acc.iter()) {
        cr[0] = _mm256_loadu_ps(accr.as_ptr());
        cr[1] = _mm256_loadu_ps(accr.as_ptr().add(NR));
    }
    let k = bp0.len() / NR;
    for p in 0..k {
        let b0 = _mm256_loadu_ps(bp0.as_ptr().add(p * NR));
        let b1 = _mm256_loadu_ps(bp1.as_ptr().add(p * NR));
        let a = ap.as_ptr().add(p * MR);
        for (r, cr) in c.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(r));
            // mul then add, two correctly-rounded ops (never FMA).
            cr[0] = _mm256_add_ps(cr[0], _mm256_mul_ps(av, b0));
            cr[1] = _mm256_add_ps(cr[1], _mm256_mul_ps(av, b1));
        }
    }
    for (cr, accr) in c.iter().zip(acc.iter_mut()) {
        _mm256_storeu_ps(accr.as_mut_ptr(), cr[0]);
        _mm256_storeu_ps(accr.as_mut_ptr().add(NR), cr[1]);
    }
}

/// AVX-512F edition: one 16-lane register per accumulator row spanning
/// both panels, so each port micro-op carries twice the lanes of the AVX
/// kernel. The two B panels are not contiguous in the pack, so each k step
/// joins two 8-lane loads with a bit-preserving `vinsertf64x4` (AVX-512F;
/// `vinsertf32x8` would need DQ). Lane-wise `vmulps`/`vaddps` on zmm are
/// the same correctly-rounded operations as everywhere else.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn fold_pair_avx512(acc: &mut [[f32; 2 * NR]; MR], ap: &[f32], bp0: &[f32], bp1: &[f32]) {
    use core::arch::x86_64::*;
    let mut c = [_mm512_setzero_ps(); MR];
    for (cr, accr) in c.iter_mut().zip(acc.iter()) {
        *cr = _mm512_loadu_ps(accr.as_ptr());
    }
    let k = bp0.len() / NR;
    for p in 0..k {
        let b0 = _mm256_loadu_ps(bp0.as_ptr().add(p * NR));
        let b1 = _mm256_loadu_ps(bp1.as_ptr().add(p * NR));
        let b = _mm512_castpd_ps(_mm512_insertf64x4(
            _mm512_castps_pd(_mm512_castps256_ps512(b0)),
            _mm256_castps_pd(b1),
            1,
        ));
        let a = ap.as_ptr().add(p * MR);
        for (r, cr) in c.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*a.add(r));
            // mul then add, two correctly-rounded ops (never FMA).
            *cr = _mm512_add_ps(*cr, _mm512_mul_ps(av, b));
        }
    }
    for (cr, accr) in c.iter().zip(acc.iter_mut()) {
        _mm512_storeu_ps(accr.as_mut_ptr(), *cr);
    }
}

/// SSE2 edition: two 4-lane registers per accumulator row.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "sse2")]
unsafe fn fold_sse2(acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(NR, 8);
    let mut lo = [_mm_setzero_ps(); MR];
    let mut hi = [_mm_setzero_ps(); MR];
    for r in 0..MR {
        lo[r] = _mm_loadu_ps(acc[r].as_ptr());
        hi[r] = _mm_loadu_ps(acc[r].as_ptr().add(4));
    }
    let k = bp.len() / NR;
    for p in 0..k {
        let blo = _mm_loadu_ps(bp.as_ptr().add(p * NR));
        let bhi = _mm_loadu_ps(bp.as_ptr().add(p * NR + 4));
        let a = ap.as_ptr().add(p * MR);
        for r in 0..MR {
            let av = _mm_set1_ps(*a.add(r));
            lo[r] = _mm_add_ps(lo[r], _mm_mul_ps(av, blo));
            hi[r] = _mm_add_ps(hi[r], _mm_mul_ps(av, bhi));
        }
    }
    for r in 0..MR {
        _mm_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm_storeu_ps(acc[r].as_mut_ptr().add(4), hi[r]);
    }
}

/// NEON edition: two 4-lane registers per accumulator row.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[target_feature(enable = "neon")]
unsafe fn fold_neon(acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32]) {
    use core::arch::aarch64::*;
    debug_assert_eq!(NR, 8);
    let mut lo = [vdupq_n_f32(0.0); MR];
    let mut hi = [vdupq_n_f32(0.0); MR];
    for r in 0..MR {
        lo[r] = vld1q_f32(acc[r].as_ptr());
        hi[r] = vld1q_f32(acc[r].as_ptr().add(4));
    }
    let k = bp.len() / NR;
    for p in 0..k {
        let blo = vld1q_f32(bp.as_ptr().add(p * NR));
        let bhi = vld1q_f32(bp.as_ptr().add(p * NR + 4));
        let a = ap.as_ptr().add(p * MR);
        for r in 0..MR {
            let av = vdupq_n_f32(*a.add(r));
            // vmulq + vaddq, never vfmaq: two roundings, like scalar.
            lo[r] = vaddq_f32(lo[r], vmulq_f32(av, blo));
            hi[r] = vaddq_f32(hi[r], vmulq_f32(av, bhi));
        }
    }
    for r in 0..MR {
        vst1q_f32(acc[r].as_mut_ptr(), lo[r]);
        vst1q_f32(acc[r].as_mut_ptr().add(4), hi[r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{normal, rng};

    fn random_panels(k: usize, seed: u64) -> (Vec<f32>, Vec<f32>, [[f32; NR]; MR]) {
        let mut r = rng(seed);
        let ap: Vec<f32> = (0..k * MR).map(|_| normal(&mut r) as f32).collect();
        let bp: Vec<f32> = (0..k * NR).map(|_| normal(&mut r) as f32).collect();
        let mut acc = [[0.0f32; NR]; MR];
        for row in acc.iter_mut() {
            for v in row.iter_mut() {
                *v = normal(&mut r) as f32;
            }
        }
        (ap, bp, acc)
    }

    #[test]
    fn every_available_path_matches_scalar_bitwise() {
        for k in [0usize, 1, 7, 64, 256] {
            let (ap, bp, acc0) = random_panels(k, 42 + k as u64);
            let mut want = acc0;
            fold_scalar(&mut want, &ap, &bp);
            for path in available_paths() {
                let mut got = acc0;
                fold(path, &mut got, &ap, &bp);
                for r in 0..MR {
                    for c in 0..NR {
                        assert_eq!(
                            got[r][c].to_bits(),
                            want[r][c].to_bits(),
                            "path {:?} k {k} elem ({r},{c})",
                            path
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paired_fold_matches_two_single_folds_bitwise() {
        for k in [0usize, 1, 7, 64, 256] {
            let mut r = rng(900 + k as u64);
            let ap: Vec<f32> = (0..k * MR).map(|_| normal(&mut r) as f32).collect();
            let bp0: Vec<f32> = (0..k * NR).map(|_| normal(&mut r) as f32).collect();
            let bp1: Vec<f32> = (0..k * NR).map(|_| normal(&mut r) as f32).collect();
            let mut acc0 = [[0.0f32; 2 * NR]; MR];
            for row in acc0.iter_mut() {
                for v in row.iter_mut() {
                    *v = normal(&mut r) as f32;
                }
            }
            // Oracle: the scalar fold over each half separately.
            let mut want = acc0;
            fold_pair(Path::Scalar, &mut want, &ap, &bp0, &bp1);
            for path in available_paths() {
                let mut got = acc0;
                fold_pair(path, &mut got, &ap, &bp0, &bp1);
                for r in 0..MR {
                    for c in 0..2 * NR {
                        assert_eq!(
                            got[r][c].to_bits(),
                            want[r][c].to_bits(),
                            "path {:?} k {k} elem ({r},{c})",
                            path
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_path_is_thread_local_and_restored() {
        assert_eq!(resolve(), detected());
        with_forced(Path::Scalar, || {
            assert_eq!(resolve(), Path::Scalar);
            // A different thread sees the unforced default.
            let other = std::thread::spawn(|| resolve() == detected());
            assert!(other.join().expect("probe thread"));
        });
        assert_eq!(resolve(), detected());
    }

    #[test]
    fn unavailable_paths_sanitize_to_scalar() {
        // Forcing an edition from another architecture must not crash.
        let foreign = if cfg!(target_arch = "x86_64") { Path::Neon } else { Path::Avx };
        with_forced(foreign, || {
            assert_eq!(resolve(), Path::Scalar);
        });
    }
}
