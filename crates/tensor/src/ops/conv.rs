//! 3-D convolution for the voxelized protein–ligand representation.
//!
//! Layout follows PyTorch: input `[N, C, D, H, W]`, kernel
//! `[O, C, kd, kh, kw]`, bias `[O]`. Stride is fixed at 1 (the paper's
//! 3D-CNN downsamples with max-pooling, not strided convs); zero padding is
//! configurable so `pad = k/2` gives "same" spatial dims for odd kernels.

use crate::graph::{Graph, VarId};
use crate::tensor::{par_min_rows, Tensor};

/// Spatial output size for one dimension.
fn out_dim(input: usize, k: usize, pad: usize) -> usize {
    input + 2 * pad + 1 - k
}

/// Direct-form forward convolution.
fn conv3d_forward(x: &Tensor, w: &Tensor, pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.fwd");
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, cw, kd, kh, kw) = dims5(w.shape());
    assert_eq!(c, cw, "conv3d channel mismatch: input {c}, kernel {cw}");
    let (od, oh, ow) = (out_dim(d, kd, pad), out_dim(h, kh, pad), out_dim(wd, kw, pad));
    let mut out = Tensor::zeros(&[n, o, od, oh, ow]);
    let xd = x.data();
    let wdta = w.data();
    let ipad = pad as isize;
    let spatial = od * oh * ow;
    // Each (bn, oc) pair owns one contiguous `spatial`-length block of the
    // output, so the pool bands over those blocks; inside a block the loop
    // nest (ic -> z -> y -> x) is the serial one, keeping every element's
    // accumulation order — and the result bits — identical to serial.
    dfpool::current().parallel_rows(
        out.data_mut(),
        spatial,
        par_min_rows(c * spatial * kd * kh * kw),
        |first, band| {
            for (row, oblock) in band.chunks_mut(spatial).enumerate() {
                let (bn, oc) = ((first + row) / o, (first + row) % o);
                for ic in 0..c {
                    let wbase = (oc * c + ic) * kd * kh * kw;
                    let xbase = (bn * c + ic) * d * h * wd;
                    for zd in 0..od {
                        for yh in 0..oh {
                            for xw in 0..ow {
                                let mut acc = 0.0f32;
                                for fz in 0..kd {
                                    let iz = zd as isize + fz as isize - ipad;
                                    if iz < 0 || iz >= d as isize {
                                        continue;
                                    }
                                    for fy in 0..kh {
                                        let iy = yh as isize + fy as isize - ipad;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for fx in 0..kw {
                                            let ix = xw as isize + fx as isize - ipad;
                                            if ix < 0 || ix >= wd as isize {
                                                continue;
                                            }
                                            let xi = xbase
                                                + (iz as usize) * h * wd
                                                + (iy as usize) * wd
                                                + ix as usize;
                                            let wi = wbase + fz * kh * kw + fy * kw + fx;
                                            acc += xd[xi] * wdta[wi];
                                        }
                                    }
                                }
                                oblock[(zd * oh + yh) * ow + xw] += acc;
                            }
                        }
                    }
                }
            }
        },
    );
    out
}

/// Gradient w.r.t. the input (full correlation with the kernel).
fn conv3d_backward_input(gout: &Tensor, w: &Tensor, xshape: &[usize], pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.bwd_input");
    let (_n, c, d, h, wd) = dims5(xshape);
    let (o, _, kd, kh, kw) = dims5(w.shape());
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let mut gx = Tensor::zeros(xshape);
    let gd = gout.data();
    let wdta = w.data();
    let ipad = pad as isize;
    let in_spatial = d * h * wd;
    // Bands over (bn, ic) blocks of the input gradient. Relative to the
    // serial bn -> oc -> ic nest this hoists ic above oc, but for a fixed
    // (bn, ic) element the contribution order stays (oc, z, y, x, fz, fy,
    // fx) lexicographic — exactly the serial accumulation order.
    dfpool::current().parallel_rows(
        gx.data_mut(),
        in_spatial,
        par_min_rows(o * od * oh * ow * kd * kh * kw),
        |first, band| {
            for (row, gxblock) in band.chunks_mut(in_spatial).enumerate() {
                let (bn, ic) = ((first + row) / c, (first + row) % c);
                for oc in 0..o {
                    let wbase = (oc * c + ic) * kd * kh * kw;
                    for zd in 0..od {
                        for yh in 0..oh {
                            for xw in 0..ow {
                                let oi = (((bn * o + oc) * od + zd) * oh + yh) * ow + xw;
                                let g = gd[oi];
                                if g == 0.0 {
                                    continue;
                                }
                                for fz in 0..kd {
                                    let iz = zd as isize + fz as isize - ipad;
                                    if iz < 0 || iz >= d as isize {
                                        continue;
                                    }
                                    for fy in 0..kh {
                                        let iy = yh as isize + fy as isize - ipad;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for fx in 0..kw {
                                            let ix = xw as isize + fx as isize - ipad;
                                            if ix < 0 || ix >= wd as isize {
                                                continue;
                                            }
                                            let xi = (iz as usize) * h * wd
                                                + (iy as usize) * wd
                                                + ix as usize;
                                            let wi = wbase + fz * kh * kw + fy * kw + fx;
                                            gxblock[xi] += g * wdta[wi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    gx
}

/// Gradient w.r.t. the kernel.
fn conv3d_backward_weight(gout: &Tensor, x: &Tensor, wshape: &[usize], pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.bwd_weight");
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, _, kd, kh, kw) = dims5(wshape);
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let mut gw = Tensor::zeros(wshape);
    let gd = gout.data();
    let xd = x.data();
    let ipad = pad as isize;
    let ksize = kd * kh * kw;
    // Bands over (oc, ic) kernel slices. Hoisting (oc, ic) above bn keeps a
    // fixed kernel element's contribution order at (bn, z, y, x) — the same
    // lexicographic order the serial nest produces.
    dfpool::current().parallel_rows(
        gw.data_mut(),
        ksize,
        par_min_rows(n * od * oh * ow * ksize),
        |first, band| {
            for (row, gwblock) in band.chunks_mut(ksize).enumerate() {
                let (oc, ic) = ((first + row) / c, (first + row) % c);
                for bn in 0..n {
                    let xbase = (bn * c + ic) * d * h * wd;
                    for zd in 0..od {
                        for yh in 0..oh {
                            for xw in 0..ow {
                                let oi = (((bn * o + oc) * od + zd) * oh + yh) * ow + xw;
                                let g = gd[oi];
                                if g == 0.0 {
                                    continue;
                                }
                                for fz in 0..kd {
                                    let iz = zd as isize + fz as isize - ipad;
                                    if iz < 0 || iz >= d as isize {
                                        continue;
                                    }
                                    for fy in 0..kh {
                                        let iy = yh as isize + fy as isize - ipad;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for fx in 0..kw {
                                            let ix = xw as isize + fx as isize - ipad;
                                            if ix < 0 || ix >= wd as isize {
                                                continue;
                                            }
                                            let xi = xbase
                                                + (iz as usize) * h * wd
                                                + (iy as usize) * wd
                                                + ix as usize;
                                            gwblock[fz * kh * kw + fy * kw + fx] += g * xd[xi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    gw
}

fn dims5(s: &[usize]) -> (usize, usize, usize, usize, usize) {
    assert_eq!(s.len(), 5, "expected rank-5 shape, got {s:?}");
    (s[0], s[1], s[2], s[3], s[4])
}

impl Graph {
    /// 3-D convolution with stride 1 and symmetric zero padding, plus a
    /// per-output-channel bias.
    pub fn conv3d(&mut self, x: VarId, w: VarId, b: VarId, pad: usize) -> VarId {
        let out = conv3d_forward(self.value(x), self.value(w), pad);
        let (n_out, o, od, oh, ow) = dims5(out.shape());
        // Add bias per output channel.
        let bt = self.value(b);
        assert_eq!(bt.shape(), &[o], "conv3d bias must be [out_channels]");
        let mut out_b = out;
        {
            let spatial = od * oh * ow;
            let data = out_b.data_mut();
            for bn in 0..n_out {
                for oc in 0..o {
                    let bval = bt.data()[oc];
                    let base = (bn * o + oc) * spatial;
                    for v in &mut data[base..base + spatial] {
                        *v += bval;
                    }
                }
            }
        }
        let wshape = self.value(w).shape().to_vec();
        let xshape = self.value(x).shape().to_vec();
        self.push_op(
            vec![x, w, b],
            out_b,
            Box::new(move |ctx| {
                let gx = conv3d_backward_input(ctx.grad, ctx.parents[1], &xshape, pad);
                let gw = conv3d_backward_weight(ctx.grad, ctx.parents[0], &wshape, pad);
                let (n, o, od, oh, ow) = dims5(ctx.grad.shape());
                let spatial = od * oh * ow;
                let mut gb = Tensor::zeros(&[o]);
                for bn in 0..n {
                    for oc in 0..o {
                        let base = (bn * o + oc) * spatial;
                        let s: f32 = ctx.grad.data()[base..base + spatial].iter().sum();
                        gb.data_mut()[oc] += s;
                    }
                }
                vec![gx, gw, gb]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1x1 kernel with weight 1 and zero bias is the identity.
        let mut g = Graph::new();
        let mut r = rng(1);
        let x = Tensor::randn(&[1, 1, 3, 3, 3], &mut r);
        let xv = g.input(x.clone());
        let w = g.input(Tensor::ones(&[1, 1, 1, 1, 1]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv3d(xv, w, b, 0);
        assert!(g.value(y).allclose(&x, 1e-6));
    }

    #[test]
    fn shapes_with_padding() {
        let mut g = Graph::new();
        let mut r = rng(2);
        let x = g.input(Tensor::randn(&[2, 3, 5, 5, 5], &mut r));
        let w = g.input(Tensor::randn(&[4, 3, 3, 3, 3], &mut r));
        let b = g.input(Tensor::zeros(&[4]));
        let same = g.conv3d(x, w, b, 1);
        assert_eq!(g.value(same).shape(), &[2, 4, 5, 5, 5]);
        let valid = g.conv3d(x, w, b, 0);
        assert_eq!(g.value(valid).shape(), &[2, 4, 3, 3, 3]);
    }

    #[test]
    fn hand_computed_sum_kernel() {
        // All-ones 3³ kernel on an all-ones 3³ input without padding sums
        // every voxel: 27.
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 3, 3, 3]));
        let w = g.input(Tensor::ones(&[1, 1, 3, 3, 3]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv3d(x, w, b, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 1, 1, 1]);
        assert!((g.value(y).item() - 27.0).abs() < 1e-5);
    }

    #[test]
    fn grad_conv3d() {
        let mut r = rng(3);
        let x = Tensor::randn(&[1, 2, 3, 3, 3], &mut r);
        let w = Tensor::randn(&[2, 2, 2, 2, 2], &mut r).scale(0.5);
        let b = Tensor::randn(&[2], &mut r);
        GradCheck { eps: 1e-2, tol: 5e-2 }
            .check(&[x, w, b], |g, v| {
                let y = g.conv3d(v[0], v[1], v[2], 1);
                let y = g.square(y);
                g.mean_all(y)
            })
            .unwrap();
    }
}
