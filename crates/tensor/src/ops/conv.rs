//! 3-D convolution for the voxelized protein–ligand representation.
//!
//! Layout follows PyTorch: input `[N, C, D, H, W]`, kernel
//! `[O, C, kd, kh, kw]`, bias `[O]`. Stride is fixed at 1 (the paper's
//! 3D-CNN downsamples with max-pooling, not strided convs); zero padding is
//! configurable so `pad = k/2` gives "same" spatial dims for odd kernels.
//!
//! All three passes are lowered onto the packed GEMM in
//! `ops::gemm` via im2col/col2im with the contraction (K) axis
//! ordered `(ic, fz, fy, fx)`, and are **batched**: batch elements are
//! grouped into chunks bounded by [`COL_CHUNK_ELEMS`] and each chunk runs
//! *one* GEMM over the stacked `[chunk·spatial, ...]` matrices — a
//! micro-batch of compounds costs one GEMM per layer, not one per
//! compound:
//!
//! * **forward** — an im2row matrix `colT[chunk·spatial, C·kd·kh·kw]`
//!   (zero padding written as explicit zeros) is multiplied against the
//!   kernel viewed as `[O, C·kd·kh·kw]` (`C = colT · Wᵀ`), then the
//!   spatial-major product is transposed per sample into the
//!   `[O, spatial]` tensor layout.
//! * **backward-input** — `gcolT = goutT · Wmat` recovers per-tap input
//!   gradients for the whole chunk at once, scattered back by a per-sample
//!   col2im pass that walks spatial positions in ascending order per input
//!   channel.
//! * **backward-weight** — `gW (+)= goutTᵀ · colT` with the stacked
//!   `[chunk·spatial, O]` gradient as the transposed A operand: the GEMM's
//!   ascending-k fold walks `(bn, s)` in exactly the reference order, and
//!   successive chunks continue the fold via the accumulate flag.
//!
//! Batching changes *which* GEMM produces each output element but not the
//! element's fold: every output element still keeps a single ascending-k
//! accumulator, so all three passes are bit-identical to
//! [`crate::ops::reference`], across pool thread counts **and** across
//! batch-chunk boundaries (locked by the kernel proptests and
//! `tests/parallel_determinism.rs`). Scratch matrices come from the
//! thread-local [`crate::scratch`] arena, so steady-state training and
//! `dfserve` micro-batches do not allocate here.

use crate::graph::{Graph, VarId};
use crate::ops::gemm::{gemm, Layout};
use crate::scratch::{self, Slot};
use crate::tensor::Tensor;

/// Spatial output size for one dimension.
fn out_dim(input: usize, k: usize, pad: usize) -> usize {
    input + 2 * pad + 1 - k
}

/// Below this many moved elements the im2col/col2im passes run inline on
/// the calling thread — they are memcpy-bound, so tiny grids lose more to
/// band hand-off than the copy costs.
const PAR_COPY_CUTOFF_ELEMS: usize = 1 << 20;

/// Ceiling (in f32 elements, ~32 MiB) on the stacked column matrix one
/// batched GEMM covers; batches whose `spatial × kdim` footprint exceeds
/// it are processed in chunks of whole samples (at least one). Keeps the
/// thread-local scratch arena bounded while letting every realistic
/// serving micro-batch (small grids) run as a single GEMM per layer.
const COL_CHUNK_ELEMS: usize = 8 << 20;

/// Number of whole samples per batched-GEMM chunk for a per-sample
/// column-matrix footprint of `per_sample` elements.
fn chunk_samples(n: usize, per_sample: usize) -> usize {
    (COL_CHUNK_ELEMS / per_sample.max(1)).clamp(1, n.max(1))
}

/// Static conv geometry shared by the im2row/col2im passes.
#[derive(Clone, Copy)]
struct Geom {
    c: usize,
    d: usize,
    h: usize,
    w: usize,
    kd: usize,
    kh: usize,
    kw: usize,
    od: usize,
    oh: usize,
    ow: usize,
    pad: usize,
}

impl Geom {
    /// Contraction length: `C·kd·kh·kw`, ordered `(ic, fz, fy, fx)`.
    fn kdim(&self) -> usize {
        self.c * self.kd * self.kh * self.kw
    }
    /// Output spatial volume `od·oh·ow`.
    fn spatial(&self) -> usize {
        self.od * self.oh * self.ow
    }
    /// Input spatial volume `d·h·w`.
    fn in_spatial(&self) -> usize {
        self.d * self.h * self.w
    }
    /// Decomposes a flat output spatial index into `(zd, yh, xw)`.
    fn unflatten(&self, s: usize) -> (usize, usize, usize) {
        (s / (self.oh * self.ow), (s / self.ow) % self.oh, s % self.ow)
    }
}

/// Fills `colT[spatial, kdim]` for one batch element `xb = x[bn]`
/// (`[C, D, H, W]` contiguous). Row `s` holds the receptive field of output
/// position `s` in `(ic, fz, fy, fx)` order, with out-of-bounds taps as
/// explicit zeros; the innermost `fx` run is a contiguous copy from the
/// input row with clamped edges.
fn im2row(colt: &mut [f32], xb: &[f32], g: Geom) {
    let kdim = g.kdim();
    let pool = dfpool::current();
    let lanes = pool.threads().min(dfpool::host_parallelism()).max(1);
    let min_rows = if g.spatial() * kdim < PAR_COPY_CUTOFF_ELEMS {
        g.spatial()
    } else {
        (65_536 / kdim.max(1)).max(1).max(g.spatial().div_ceil(lanes))
    };
    pool.parallel_rows(colt, kdim, min_rows, |first, band| {
        for (ds, row) in band.chunks_mut(kdim).enumerate() {
            let (zd, yh, xw) = g.unflatten(first + ds);
            let ix0 = xw as isize - g.pad as isize;
            let lo = ((-ix0).max(0) as usize).min(g.kw);
            let hi = ((g.w as isize - ix0).max(0) as usize).min(g.kw);
            let mut kk = 0;
            for ic in 0..g.c {
                let xc = &xb[ic * g.in_spatial()..(ic + 1) * g.in_spatial()];
                for fz in 0..g.kd {
                    let iz = zd as isize + fz as isize - g.pad as isize;
                    if iz < 0 || iz >= g.d as isize {
                        row[kk..kk + g.kh * g.kw].fill(0.0);
                        kk += g.kh * g.kw;
                        continue;
                    }
                    let zoff = (iz as usize) * g.h * g.w;
                    for fy in 0..g.kh {
                        let iy = yh as isize + fy as isize - g.pad as isize;
                        let dst = &mut row[kk..kk + g.kw];
                        kk += g.kw;
                        if iy < 0 || iy >= g.h as isize {
                            dst.fill(0.0);
                            continue;
                        }
                        dst[..lo].fill(0.0);
                        if lo < hi {
                            let src = zoff + (iy as usize) * g.w + (ix0 + lo as isize) as usize;
                            dst[lo..hi].copy_from_slice(&xc[src..src + (hi - lo)]);
                        }
                        dst[lo.max(hi)..].fill(0.0);
                    }
                }
            }
        }
    });
}

/// Scatters `gcolT[spatial, kdim]` back into one batch element of the input
/// gradient (`gxb = gx[bn]`, `[C, D, H, W]`). Parallel over input channels;
/// within a channel, contributions land in `(s, fz, fy, fx)` order — the
/// accumulation order the reference kernel defines.
fn col2im_add(gxb: &mut [f32], gcolt: &[f32], g: Geom) {
    let in_sp = g.in_spatial();
    let ksz = g.kd * g.kh * g.kw;
    let pool = dfpool::current();
    let lanes = pool.threads().min(dfpool::host_parallelism()).max(1);
    let min_rows =
        if g.spatial() * g.kdim() < PAR_COPY_CUTOFF_ELEMS { g.c } else { g.c.div_ceil(lanes) };
    pool.parallel_rows(gxb, in_sp, min_rows, |first, band| {
        for (dc, gxc) in band.chunks_mut(in_sp).enumerate() {
            let ic = first + dc;
            for s in 0..g.spatial() {
                let (zd, yh, xw) = g.unflatten(s);
                let row = &gcolt[s * g.kdim() + ic * ksz..s * g.kdim() + (ic + 1) * ksz];
                let ix0 = xw as isize - g.pad as isize;
                let lo = ((-ix0).max(0) as usize).min(g.kw);
                let hi = ((g.w as isize - ix0).max(0) as usize).min(g.kw);
                let mut kk = 0;
                for fz in 0..g.kd {
                    let iz = zd as isize + fz as isize - g.pad as isize;
                    if iz < 0 || iz >= g.d as isize {
                        kk += g.kh * g.kw;
                        continue;
                    }
                    let zoff = (iz as usize) * g.h * g.w;
                    for fy in 0..g.kh {
                        let iy = yh as isize + fy as isize - g.pad as isize;
                        let src = &row[kk..kk + g.kw];
                        kk += g.kw;
                        if iy < 0 || iy >= g.h as isize || lo >= hi {
                            continue;
                        }
                        let base = zoff + (iy as usize) * g.w + (ix0 + lo as isize) as usize;
                        for (dstv, &v) in gxc[base..base + (hi - lo)].iter_mut().zip(&src[lo..hi]) {
                            *dstv += v;
                        }
                    }
                }
            }
        }
    });
}

/// im2col-lowered forward convolution (no bias): input `[N,C,D,H,W]`,
/// kernel `[O,C,kd,kh,kw]`, stride 1. Public so the kernel proptests and
/// `dfbench` can drive it directly against [`crate::ops::reference`];
/// model code goes through [`Graph::conv3d`].
pub fn conv3d_forward(x: &Tensor, w: &Tensor, pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.fwd");
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, cw, kd, kh, kw) = dims5(w.shape());
    assert_eq!(c, cw, "conv3d channel mismatch: input {c}, kernel {cw}");
    let (od, oh, ow) = (out_dim(d, kd, pad), out_dim(h, kh, pad), out_dim(wd, kw, pad));
    let g = Geom { c, d, h, w: wd, kd, kh, kw, od, oh, ow, pad };
    let (kdim, s_sp) = (g.kdim(), g.spatial());
    let mut out = Tensor::zeros(&[n, o, od, oh, ow]);
    let xd = x.data();
    let wdta = w.data();
    let bc_max = chunk_samples(n, s_sp * kdim);
    let mut b0 = 0;
    while b0 < n {
        let bc = bc_max.min(n - b0);
        dftrace::counter_add("tensor.conv3d.batched_gemms", 1);
        scratch::with(Slot::Im2col, bc * s_sp * kdim, |colt| {
            {
                let _s = dftrace::span("tensor.conv3d.im2col");
                for db in 0..bc {
                    let bn = b0 + db;
                    im2row(
                        &mut colt[db * s_sp * kdim..(db + 1) * s_sp * kdim],
                        &xd[bn * c * g.in_spatial()..(bn + 1) * c * g.in_spatial()],
                        g,
                    );
                }
            }
            scratch::with(Slot::GemmOut, bc * s_sp * o, |outt| {
                // outT[(bn,s), oc] = Σ_k colT[(bn,s), k] · W[oc, k] — one
                // GEMM for the whole chunk, spatial-major so it tiles over
                // the (large) stacked spatial axis, not O.
                gemm(Layout::Nt, bc * s_sp, kdim, o, colt, wdta, outt, false);
                let _s = dftrace::span("tensor.conv3d.unpack");
                for db in 0..bc {
                    let bn = b0 + db;
                    let oblock = &mut out.data_mut()[bn * o * s_sp..(bn + 1) * o * s_sp];
                    for (s, orow) in
                        outt[db * s_sp * o..(db + 1) * s_sp * o].chunks_exact(o).enumerate()
                    {
                        for (oc, &v) in orow.iter().enumerate() {
                            oblock[oc * s_sp + s] = v;
                        }
                    }
                }
            });
        });
        b0 += bc;
    }
    out
}

/// Gradient w.r.t. the input: GEMM to per-tap gradients, then col2im.
pub fn conv3d_backward_input(gout: &Tensor, w: &Tensor, xshape: &[usize], pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.bwd_input");
    let (n, c, d, h, wd) = dims5(xshape);
    let (o, _, kd, kh, kw) = dims5(w.shape());
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let g = Geom { c, d, h, w: wd, kd, kh, kw, od, oh, ow, pad };
    let (kdim, s_sp, in_sp) = (g.kdim(), g.spatial(), g.in_spatial());
    let mut gx = Tensor::zeros(xshape);
    let gd = gout.data();
    let wdta = w.data();
    let bc_max = chunk_samples(n, s_sp * kdim);
    let mut b0 = 0;
    while b0 < n {
        let bc = bc_max.min(n - b0);
        dftrace::counter_add("tensor.conv3d.batched_gemms", 1);
        scratch::with(Slot::GradT, bc * s_sp * o, |goutt| {
            {
                // Transpose each gout[bn] from [O, spatial] to spatial-major.
                let _s = dftrace::span("tensor.conv3d.unpack");
                for db in 0..bc {
                    let gblock = &gd[(b0 + db) * o * s_sp..(b0 + db + 1) * o * s_sp];
                    let gslab = &mut goutt[db * s_sp * o..(db + 1) * s_sp * o];
                    for (s, grow) in gslab.chunks_exact_mut(o).enumerate() {
                        for (oc, v) in grow.iter_mut().enumerate() {
                            *v = gblock[oc * s_sp + s];
                        }
                    }
                }
            }
            scratch::with(Slot::GemmOut, bc * s_sp * kdim, |gcolt| {
                // gcolT[(bn,s), k] = Σ_oc goutT[(bn,s), oc] · W[oc, k] —
                // one GEMM per chunk.
                gemm(Layout::Nn, bc * s_sp, o, kdim, goutt, wdta, gcolt, false);
                let _s = dftrace::span("tensor.conv3d.col2im");
                for db in 0..bc {
                    let bn = b0 + db;
                    col2im_add(
                        &mut gx.data_mut()[bn * c * in_sp..(bn + 1) * c * in_sp],
                        &gcolt[db * s_sp * kdim..(db + 1) * s_sp * kdim],
                        g,
                    );
                }
            });
        });
        b0 += bc;
    }
    gx
}

/// Gradient w.r.t. the kernel: re-run im2row, accumulate `gout_bn · colT`
/// over the batch.
pub fn conv3d_backward_weight(gout: &Tensor, x: &Tensor, wshape: &[usize], pad: usize) -> Tensor {
    let _t = dftrace::span("tensor.conv3d.bwd_weight");
    let (n, c, d, h, wd) = dims5(x.shape());
    let (o, _, kd, kh, kw) = dims5(wshape);
    let (_, _, od, oh, ow) = dims5(gout.shape());
    let g = Geom { c, d, h, w: wd, kd, kh, kw, od, oh, ow, pad };
    let (kdim, s_sp) = (g.kdim(), g.spatial());
    let mut gw = Tensor::zeros(wshape);
    let gd = gout.data();
    let xd = x.data();
    let bc_max = chunk_samples(n, s_sp * kdim);
    let mut b0 = 0;
    while b0 < n {
        let bc = bc_max.min(n - b0);
        dftrace::counter_add("tensor.conv3d.batched_gemms", 1);
        scratch::with(Slot::Im2col, bc * s_sp * kdim, |colt| {
            {
                let _s = dftrace::span("tensor.conv3d.im2col");
                for db in 0..bc {
                    let bn = b0 + db;
                    im2row(
                        &mut colt[db * s_sp * kdim..(db + 1) * s_sp * kdim],
                        &xd[bn * c * g.in_spatial()..(bn + 1) * c * g.in_spatial()],
                        g,
                    );
                }
            }
            scratch::with(Slot::GradT, bc * s_sp * o, |goutt| {
                {
                    // Spatial-major transpose of the chunk's gout, so it can
                    // serve as the Tn (k-major) A operand below.
                    let _s = dftrace::span("tensor.conv3d.unpack");
                    for db in 0..bc {
                        let gblock = &gd[(b0 + db) * o * s_sp..(b0 + db + 1) * o * s_sp];
                        let gslab = &mut goutt[db * s_sp * o..(db + 1) * s_sp * o];
                        for (s, grow) in gslab.chunks_exact_mut(o).enumerate() {
                            for (oc, v) in grow.iter_mut().enumerate() {
                                *v = gblock[oc * s_sp + s];
                            }
                        }
                    }
                }
                // gW[oc, k] (+)= Σ_{(bn,s)} goutT[(bn,s), oc] · colT[(bn,s), k]:
                // one GEMM per chunk whose ascending-k fold walks (bn, s) in
                // exactly the reference order; later chunks continue each
                // element's fold through the accumulate flag — bit-equal to
                // the one big (bn, s) contraction the reference performs.
                gemm(Layout::Tn, o, bc * s_sp, kdim, goutt, colt, gw.data_mut(), true);
            });
        });
        b0 += bc;
    }
    gw
}

fn dims5(s: &[usize]) -> (usize, usize, usize, usize, usize) {
    assert_eq!(s.len(), 5, "expected rank-5 shape, got {s:?}");
    (s[0], s[1], s[2], s[3], s[4])
}

impl Graph {
    /// 3-D convolution with stride 1 and symmetric zero padding, plus a
    /// per-output-channel bias.
    pub fn conv3d(&mut self, x: VarId, w: VarId, b: VarId, pad: usize) -> VarId {
        let out = conv3d_forward(self.value(x), self.value(w), pad);
        let (n_out, o, od, oh, ow) = dims5(out.shape());
        // Add bias per output channel.
        let bt = self.value(b);
        assert_eq!(bt.shape(), &[o], "conv3d bias must be [out_channels]");
        let mut out_b = out;
        {
            let spatial = od * oh * ow;
            let data = out_b.data_mut();
            for bn in 0..n_out {
                for oc in 0..o {
                    let bval = bt.data()[oc];
                    let base = (bn * o + oc) * spatial;
                    for v in &mut data[base..base + spatial] {
                        *v += bval;
                    }
                }
            }
        }
        let wshape = self.value(w).shape().to_vec();
        let xshape = self.value(x).shape().to_vec();
        self.push_op(
            vec![x, w, b],
            out_b,
            Box::new(move |ctx| {
                let gx = conv3d_backward_input(ctx.grad, ctx.parents[1], &xshape, pad);
                let gw = conv3d_backward_weight(ctx.grad, ctx.parents[0], &wshape, pad);
                let (n, o, od, oh, ow) = dims5(ctx.grad.shape());
                let spatial = od * oh * ow;
                let mut gb = Tensor::zeros(&[o]);
                for bn in 0..n {
                    for oc in 0..o {
                        let base = (bn * o + oc) * spatial;
                        let s: f32 = ctx.grad.data()[base..base + spatial].iter().sum();
                        gb.data_mut()[oc] += s;
                    }
                }
                vec![gx, gw, gb]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1x1 kernel with weight 1 and zero bias is the identity.
        let mut g = Graph::new();
        let mut r = rng(1);
        let x = Tensor::randn(&[1, 1, 3, 3, 3], &mut r);
        let xv = g.input(x.clone());
        let w = g.input(Tensor::ones(&[1, 1, 1, 1, 1]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv3d(xv, w, b, 0);
        assert!(g.value(y).allclose(&x, 1e-6));
    }

    #[test]
    fn shapes_with_padding() {
        let mut g = Graph::new();
        let mut r = rng(2);
        let x = g.input(Tensor::randn(&[2, 3, 5, 5, 5], &mut r));
        let w = g.input(Tensor::randn(&[4, 3, 3, 3, 3], &mut r));
        let b = g.input(Tensor::zeros(&[4]));
        let same = g.conv3d(x, w, b, 1);
        assert_eq!(g.value(same).shape(), &[2, 4, 5, 5, 5]);
        let valid = g.conv3d(x, w, b, 0);
        assert_eq!(g.value(valid).shape(), &[2, 4, 3, 3, 3]);
    }

    #[test]
    fn hand_computed_sum_kernel() {
        // All-ones 3³ kernel on an all-ones 3³ input without padding sums
        // every voxel: 27.
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 3, 3, 3]));
        let w = g.input(Tensor::ones(&[1, 1, 3, 3, 3]));
        let b = g.input(Tensor::zeros(&[1]));
        let y = g.conv3d(x, w, b, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 1, 1, 1]);
        assert!((g.value(y).item() - 27.0).abs() < 1e-5);
    }

    #[test]
    fn grad_conv3d() {
        let mut r = rng(3);
        let x = Tensor::randn(&[1, 2, 3, 3, 3], &mut r);
        let w = Tensor::randn(&[2, 2, 2, 2, 2], &mut r).scale(0.5);
        let b = Tensor::randn(&[2], &mut r);
        GradCheck { eps: 1e-2, tol: 5e-2 }
            .check(&[x, w, b], |g, v| {
                let y = g.conv3d(v[0], v[1], v[2], 1);
                let y = g.square(y);
                g.mean_all(y)
            })
            .unwrap();
    }

    #[test]
    fn forward_matches_reference_bitwise() {
        let mut r = rng(7);
        let x = Tensor::randn(&[2, 3, 5, 4, 6], &mut r);
        let w = Tensor::randn(&[4, 3, 3, 2, 3], &mut r);
        for pad in 0..=2 {
            let got = conv3d_forward(&x, &w, pad);
            let want = crate::ops::reference::conv3d_forward(&x, &w, pad);
            assert_eq!(got.data(), want.data(), "pad {pad}");
        }
    }

    #[test]
    fn backward_matches_reference_bitwise() {
        let mut r = rng(8);
        let x = Tensor::randn(&[2, 2, 5, 5, 5], &mut r);
        let w = Tensor::randn(&[3, 2, 3, 3, 3], &mut r);
        let pad = 1;
        let y = conv3d_forward(&x, &w, pad);
        let gout = Tensor::randn(y.shape(), &mut r);
        let gx = conv3d_backward_input(&gout, &w, x.shape(), pad);
        let gw = conv3d_backward_weight(&gout, &x, w.shape(), pad);
        let gx_ref = crate::ops::reference::conv3d_backward_input(&gout, &w, x.shape(), pad);
        let gw_ref = crate::ops::reference::conv3d_backward_weight(&gout, &x, w.shape(), pad);
        assert_eq!(gx.data(), gx_ref.data());
        assert_eq!(gw.data(), gw_ref.data());
    }
}
