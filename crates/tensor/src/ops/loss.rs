//! Loss functions. The paper trains every model — individual heads and all
//! fusion variants — with mean squared error against experimental pK values.

use crate::graph::{Graph, VarId};

impl Graph {
    /// Mean squared error between two same-shape tensors, as a scalar node.
    pub fn mse_loss(&mut self, pred: VarId, target: VarId) -> VarId {
        let d = self.sub(pred, target);
        let sq = self.square(d);
        self.mean_all(sq)
    }

    /// Smooth L1 (Huber) loss with threshold `delta`; robust alternative
    /// exposed for ablations on noisy docked-pose labels.
    pub fn huber_loss(&mut self, pred: VarId, target: VarId, delta: f32) -> VarId {
        assert!(delta > 0.0, "huber delta must be positive");
        let diff = self.sub(pred, target);
        let v = self.value(diff).map(|d| {
            let a = d.abs();
            if a <= delta {
                0.5 * d * d
            } else {
                delta * (a - 0.5 * delta)
            }
        });
        let per_elem = self.push_op(
            vec![diff],
            v,
            Box::new(move |ctx| {
                vec![ctx.grad.zip(ctx.parents[0], |g, d| {
                    if d.abs() <= delta {
                        g * d
                    } else {
                        g * delta * d.signum()
                    }
                })]
            }),
        );
        self.mean_all(per_elem)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crate::ops::GradCheck;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    #[test]
    fn mse_of_identical_inputs_is_zero() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[1.0, 2.0]));
        let loss = g.mse_loss(a, a);
        assert_eq!(g.value(loss).item(), 0.0);
    }

    #[test]
    fn mse_hand_computed() {
        let mut g = Graph::new();
        let p = g.input(Tensor::from_slice(&[1.0, 3.0]));
        let t = g.input(Tensor::from_slice(&[0.0, 1.0]));
        let loss = g.mse_loss(p, t);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((g.value(loss).item() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn grad_mse_and_huber() {
        let mut r = rng(1);
        let p = Tensor::randn(&[6], &mut r).scale(2.0);
        let t = Tensor::randn(&[6], &mut r);
        GradCheck::default().check(&[p.clone(), t.clone()], |g, v| g.mse_loss(v[0], v[1])).unwrap();
        GradCheck { eps: 1e-2, tol: 3e-2 }
            .check(&[p, t], |g, v| g.huber_loss(v[0], v[1], 1.0))
            .unwrap();
    }

    #[test]
    fn huber_is_quadratic_near_zero_linear_far() {
        let mut g = Graph::new();
        let p = g.input(Tensor::from_slice(&[0.5]));
        let t = g.input(Tensor::from_slice(&[0.0]));
        let near = g.huber_loss(p, t, 1.0);
        assert!((g.value(near).item() - 0.125).abs() < 1e-6);
        let p2 = g.input(Tensor::from_slice(&[3.0]));
        let far = g.huber_loss(p2, t, 1.0);
        assert!((g.value(far).item() - 2.5).abs() < 1e-6);
    }
}
