//! Elementwise and shape-preserving differentiable ops.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;
use rand::Rng;

/// SELU constants from Klambauer et al. 2017 ("Self-Normalizing Neural
/// Networks"), the activation the paper's optimization selected for both
/// fusion models (Tables 4 and 5).
pub const SELU_ALPHA: f32 = 1.673_263_2;
pub const SELU_SCALE: f32 = 1.050_701;

impl Graph {
    /// Elementwise addition of two same-shape tensors.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push_op(vec![a, b], v, Box::new(|ctx| vec![ctx.grad.clone(), ctx.grad.clone()]))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push_op(vec![a, b], v, Box::new(|ctx| vec![ctx.grad.clone(), ctx.grad.scale(-1.0)]))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        self.push_op(
            vec![a, b],
            v,
            Box::new(|ctx| vec![ctx.grad.mul(ctx.parents[1]), ctx.grad.mul(ctx.parents[0])]),
        )
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push_op(vec![a], v, Box::new(move |ctx| vec![ctx.grad.scale(s)]))
    }

    /// Adds a compile-time scalar.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).add_scalar(s);
        self.push_op(vec![a], v, Box::new(|ctx| vec![ctx.grad.clone()]))
    }

    /// Negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        self.scale(a, -1.0)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| vec![ctx.grad.zip(ctx.parents[0], |g, x| 2.0 * g * x)]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| {
                vec![ctx.grad.zip(ctx.parents[0], |g, x| if x > 0.0 { g } else { 0.0 })]
            }),
        )
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push_op(
            vec![a],
            v,
            Box::new(move |ctx| {
                vec![ctx.grad.zip(ctx.parents[0], |g, x| if x > 0.0 { g } else { slope * g })]
            }),
        )
    }

    /// SELU activation (Klambauer et al. 2017).
    pub fn selu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| {
            if x > 0.0 {
                SELU_SCALE * x
            } else {
                SELU_SCALE * SELU_ALPHA * (x.exp() - 1.0)
            }
        });
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| {
                // d/dx = scale for x > 0; scale*alpha*exp(x) = out + scale*alpha otherwise.
                let deriv = ctx.out.zip(ctx.parents[0], |o, x| {
                    if x > 0.0 {
                        SELU_SCALE
                    } else {
                        o + SELU_SCALE * SELU_ALPHA
                    }
                });
                vec![ctx.grad.mul(&deriv)]
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| vec![ctx.grad.zip(ctx.out, |g, y| g * y * (1.0 - y))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| vec![ctx.grad.zip(ctx.out, |g, y| g * (1.0 - y * y))]),
        )
    }

    /// Mean over all elements, producing a scalar.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let n = self.value(a).numel().max(1);
        let v = Tensor::scalar(self.value(a).mean());
        self.push_op(
            vec![a],
            v,
            Box::new(move |ctx| {
                let g = ctx.grad.item() / n as f32;
                vec![Tensor::full(ctx.parents[0].shape(), g)]
            }),
        )
    }

    /// Sum over all elements, producing a scalar.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.value(a).sum());
        self.push_op(
            vec![a],
            v,
            Box::new(|ctx| vec![Tensor::full(ctx.parents[0].shape(), ctx.grad.item())]),
        )
    }

    /// Adds a 1-D bias of length `n` to a tensor whose last dimension is `n`
    /// (broadcast over all leading dimensions).
    pub fn add_bias(&mut self, x: VarId, b: VarId) -> VarId {
        let xt = self.value(x);
        let bt = self.value(b);
        let n = *xt.shape().last().expect("add_bias needs rank >= 1");
        assert_eq!(
            bt.shape(),
            &[n],
            "bias shape {:?} incompatible with input {:?}",
            bt.shape(),
            xt.shape()
        );
        let mut out = xt.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bt.data()[i % n];
        }
        self.push_op(
            vec![x, b],
            out,
            Box::new(move |ctx| {
                let mut db = Tensor::zeros(&[n]);
                for (i, &g) in ctx.grad.data().iter().enumerate() {
                    db.data_mut()[i % n] += g;
                }
                vec![ctx.grad.clone(), db]
            }),
        )
    }

    /// Column-wise concatenation of rank-2 tensors with equal row counts.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_cols on empty list");
        let m = self.value(parts[0]).shape()[0];
        let widths: Vec<usize> = parts
            .iter()
            .map(|&p| {
                let s = self.value(p).shape();
                assert_eq!(s.len(), 2, "concat_cols requires rank-2 inputs, got {s:?}");
                assert_eq!(s[0], m, "concat_cols row mismatch");
                s[1]
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(&[m, total]);
        {
            let od = out.data_mut();
            let mut col = 0usize;
            for (&p, &w) in parts.iter().zip(&widths) {
                let pd = self.value(p).data();
                for r in 0..m {
                    od[r * total + col..r * total + col + w]
                        .copy_from_slice(&pd[r * w..(r + 1) * w]);
                }
                col += w;
            }
        }
        let widths_c = widths.clone();
        self.push_op(
            parts.to_vec(),
            out,
            Box::new(move |ctx| {
                let gd = ctx.grad.data();
                let mut grads = Vec::with_capacity(widths_c.len());
                let mut col = 0usize;
                for &w in &widths_c {
                    let mut g = Tensor::zeros(&[m, w]);
                    for r in 0..m {
                        g.data_mut()[r * w..(r + 1) * w]
                            .copy_from_slice(&gd[r * total + col..r * total + col + w]);
                    }
                    grads.push(g);
                    col += w;
                }
                grads
            }),
        )
    }

    /// Row-wise concatenation of rank-2 tensors with equal column counts.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows on empty list");
        let n = self.value(parts[0]).shape()[1];
        let heights: Vec<usize> = parts
            .iter()
            .map(|&p| {
                let s = self.value(p).shape();
                assert_eq!(s.len(), 2, "concat_rows requires rank-2 inputs");
                assert_eq!(s[1], n, "concat_rows col mismatch");
                s[0]
            })
            .collect();
        let total: usize = heights.iter().sum();
        let mut data = Vec::with_capacity(total * n);
        for &p in parts {
            data.extend_from_slice(self.value(p).data());
        }
        let heights_c = heights.clone();
        self.push_op(
            parts.to_vec(),
            Tensor::from_vec(data, &[total, n]),
            Box::new(move |ctx| {
                let gd = ctx.grad.data();
                let mut grads = Vec::with_capacity(heights_c.len());
                let mut row = 0usize;
                for &h in &heights_c {
                    grads.push(Tensor::from_vec(gd[row * n..(row + h) * n].to_vec(), &[h, n]));
                    row += h;
                }
                grads
            }),
        )
    }

    /// Extracts columns `[start, start+len)` of a rank-2 tensor.
    pub fn slice_cols(&mut self, x: VarId, start: usize, len: usize) -> VarId {
        let xt = self.value(x);
        assert_eq!(xt.rank(), 2, "slice_cols requires rank 2");
        let (m, n) = (xt.shape()[0], xt.shape()[1]);
        assert!(start + len <= n, "slice_cols out of range");
        let mut out = Tensor::zeros(&[m, len]);
        for r in 0..m {
            out.data_mut()[r * len..(r + 1) * len]
                .copy_from_slice(&xt.data()[r * n + start..r * n + start + len]);
        }
        self.push_op(
            vec![x],
            out,
            Box::new(move |ctx| {
                let mut g = Tensor::zeros(&[m, n]);
                for r in 0..m {
                    g.data_mut()[r * n + start..r * n + start + len]
                        .copy_from_slice(&ctx.grad.data()[r * len..(r + 1) * len]);
                }
                vec![g]
            }),
        )
    }

    /// Differentiable reshape.
    pub fn reshape(&mut self, x: VarId, shape: &[usize]) -> VarId {
        let v = self.value(x).reshape(shape);
        let orig = self.value(x).shape().to_vec();
        self.push_op(vec![x], v, Box::new(move |ctx| vec![ctx.grad.reshape(&orig)]))
    }

    /// Inverted dropout: during training zeroes each element with
    /// probability `rate` and scales survivors by `1/(1-rate)`; identity in
    /// eval mode. The mask is sampled from the supplied RNG so training runs
    /// remain reproducible.
    pub fn dropout(&mut self, x: VarId, rate: f32, train: bool, rng: &mut impl Rng) -> VarId {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1), got {rate}");
        if !train || rate == 0.0 {
            // Identity node keeps the tape structure uniform.
            let v = self.value(x).clone();
            return self.push_op(vec![x], v, Box::new(|ctx| vec![ctx.grad.clone()]));
        }
        let keep = 1.0 - rate;
        let mask: Vec<f32> = (0..self.value(x).numel())
            .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mask_t = Tensor::from_vec(mask, self.value(x).shape());
        let v = self.value(x).mul(&mask_t);
        self.push_op(vec![x], v, Box::new(move |ctx| vec![ctx.grad.mul(&mask_t)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GradCheck;
    use crate::rng::rng;

    #[test]
    fn grad_add_sub_mul() {
        let mut r = rng(1);
        let a = Tensor::randn(&[3, 2], &mut r);
        let b = Tensor::randn(&[3, 2], &mut r);
        GradCheck::default()
            .check(&[a.clone(), b.clone()], |g, v| {
                let s = g.add(v[0], v[1]);
                let d = g.sub(s, v[1]);
                let m = g.mul(d, v[1]);
                g.sum_all(m)
            })
            .unwrap();
    }

    #[test]
    fn grad_activations() {
        let mut r = rng(2);
        let x = Tensor::rand_uniform(&[10], -2.0, 2.0, &mut r);
        for act in ["relu", "lrelu", "selu", "sigmoid", "tanh"] {
            GradCheck { eps: 1e-2, tol: 3e-2 }
                .check(std::slice::from_ref(&x), |g, v| {
                    let y = match act {
                        "relu" => g.relu(v[0]),
                        "lrelu" => g.leaky_relu(v[0], 0.1),
                        "selu" => g.selu(v[0]),
                        "sigmoid" => g.sigmoid(v[0]),
                        _ => g.tanh(v[0]),
                    };
                    g.sum_all(y)
                })
                .unwrap_or_else(|e| panic!("{act}: {e}"));
        }
    }

    #[test]
    fn selu_matches_reference_values() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[1.0, 0.0, -1.0]));
        let y = g.selu(x);
        let v = g.value(y).data();
        assert!((v[0] - SELU_SCALE).abs() < 1e-5);
        assert!(v[1].abs() < 1e-6);
        let expect = SELU_SCALE * SELU_ALPHA * ((-1.0f32).exp() - 1.0);
        assert!((v[2] - expect).abs() < 1e-5);
    }

    #[test]
    fn grad_bias_and_mean() {
        let mut r = rng(3);
        let x = Tensor::randn(&[4, 3], &mut r);
        let b = Tensor::randn(&[3], &mut r);
        GradCheck::default()
            .check(&[x, b], |g, v| {
                let y = g.add_bias(v[0], v[1]);
                g.mean_all(y)
            })
            .unwrap();
    }

    #[test]
    fn concat_cols_layout() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]));
        let b = g.input(Tensor::from_vec(vec![5., 6.], &[2, 1]));
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.value(c).shape(), &[2, 3]);
        assert_eq!(g.value(c).data(), &[1., 2., 5., 3., 4., 6.]);
    }

    #[test]
    fn grad_concat_and_slice() {
        let mut r = rng(4);
        let a = Tensor::randn(&[2, 3], &mut r);
        let b = Tensor::randn(&[2, 2], &mut r);
        GradCheck::default()
            .check(&[a, b], |g, v| {
                let c = g.concat_cols(&[v[0], v[1]]);
                let s = g.slice_cols(c, 1, 3);
                let sq = g.square(s);
                g.sum_all(sq)
            })
            .unwrap();
    }

    #[test]
    fn concat_rows_stacks() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1., 2.], &[1, 2]));
        let b = g.input(Tensor::from_vec(vec![3., 4., 5., 6.], &[2, 2]));
        let c = g.concat_rows(&[a, b]);
        assert_eq!(g.value(c).shape(), &[3, 2]);
        assert_eq!(g.value(c).data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut r = rng(5);
        let x = Tensor::ones(&[1000]);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let eval = g.dropout(xv, 0.5, false, &mut r);
        assert!(g.value(eval).allclose(&x, 0.0));
        let train = g.dropout(xv, 0.5, true, &mut r);
        // Expectation preserved: mean stays near 1.
        assert!((g.value(train).mean() - 1.0).abs() < 0.15);
        // Surviving entries are scaled by 2.
        assert!(g.value(train).data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }
}
