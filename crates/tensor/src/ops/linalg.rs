//! Matrix multiplication and the dense (`linear`) composite op.

use crate::graph::{Graph, VarId};

impl Graph {
    /// Matrix product of rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push_op(
            vec![a, b],
            v,
            Box::new(|ctx| {
                // dA = G · Bᵀ, dB = Aᵀ · G
                let da = ctx.grad.matmul_nt(ctx.parents[1]);
                let db = ctx.parents[0].matmul_tn(ctx.grad);
                vec![da, db]
            }),
        )
    }

    /// Fully-connected layer primitive: `x · w + b`.
    pub fn linear(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        let xw = self.matmul(x, w);
        self.add_bias(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use crate::ops::GradCheck;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    #[test]
    fn grad_matmul() {
        let mut r = rng(10);
        let a = Tensor::randn(&[3, 4], &mut r);
        let b = Tensor::randn(&[4, 2], &mut r);
        GradCheck::default()
            .check(&[a, b], |g, v| {
                let c = g.matmul(v[0], v[1]);
                let sq = g.square(c);
                g.sum_all(sq)
            })
            .unwrap();
    }

    #[test]
    fn grad_linear_chain() {
        let mut r = rng(11);
        let x = Tensor::randn(&[2, 3], &mut r);
        let w = Tensor::randn(&[3, 4], &mut r);
        let b = Tensor::randn(&[4], &mut r);
        GradCheck::default()
            .check(&[x, w, b], |g, v| {
                let y = g.linear(v[0], v[1], v[2]);
                let y = g.tanh(y);
                g.mean_all(y)
            })
            .unwrap();
    }
}
