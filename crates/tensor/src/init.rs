//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Kaiming (He) uniform initialization for ReLU-family activations:
/// `U(-sqrt(6/fan_in), sqrt(6/fan_in))`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0f32 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +...)`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let bound = (6.0f32 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Bias initialization matching PyTorch's `Linear` default:
/// `U(-1/sqrt(fan_in), 1/sqrt(fan_in))`.
pub fn bias_uniform(len: usize, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let bound = 1.0 / (fan_in.max(1) as f32).sqrt();
    Tensor::rand_uniform(&[len], -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;

    #[test]
    fn kaiming_bounds() {
        let mut r = rng(1);
        let t = kaiming_uniform(&[100, 50], 100, &mut r);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
        assert!(t.max() > 0.5 * bound, "should explore the range");
    }

    #[test]
    fn xavier_bounds() {
        let mut r = rng(2);
        let t = xavier_uniform(&[30, 20], 30, 20, &mut r);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let mut r = rng(3);
        let t = kaiming_uniform(&[2], 0, &mut r);
        assert!(t.data().iter().all(|v| v.is_finite()));
    }
}
