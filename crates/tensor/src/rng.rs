//! Seeded random-number helpers shared across the workspace.
//!
//! Everything stochastic in the reproduction takes an explicit `u64` seed so
//! experiments are bit-for-bit reproducible. This module wraps `rand`'s
//! `StdRng` and adds the handful of distributions the rest of the code needs
//! (standard normal via Box–Muller, so we avoid an extra `rand_distr`
//! dependency).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finalizer so nearby `(seed, stream)` pairs produce
/// uncorrelated child seeds. This is how the workspace fans one experiment
/// seed out to many independent components (data generation, model init,
/// dropout, docking search, ...).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal value using the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Avoid log(0) by sampling u1 in (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a normal value with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Samples uniformly from `[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Samples log-uniformly from `[lo, hi)`; both bounds must be positive.
///
/// This is the standard way learning-rate-like hyper-parameters are sampled
/// (the paper's PB2 ranges such as 1e-8..1e-3 span many decades).
pub fn log_uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "log_uniform requires 0 < lo < hi");
    (uniform(rng, lo.ln(), hi.ln())).exp()
}

/// Picks a uniformly random element of a slice.
pub fn choose<'a, T>(rng: &mut impl Rng, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "choose on empty slice");
    &items[rng.gen_range(0..items.len())]
}

/// Fisher–Yates shuffles indices `0..n` and returns the permutation.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s = 7u64;
        let children: Vec<u64> = (0..16).map(|i| derive_seed(s, i)).collect();
        let mut uniq = children.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), children.len(), "child seeds must be distinct");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = rng(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let v = log_uniform(&mut r, 1e-8, 1e-3);
            assert!((1e-8..1e-3).contains(&v));
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(9);
        let p = permutation(&mut r, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
