//! Trainable-parameter storage shared between model layers and optimizers.
//!
//! Layers register their weights in a [`ParamStore`] and keep only the
//! returned [`ParamId`]s. Each forward pass injects the current values into a
//! fresh [`crate::graph::Graph`]; after `backward`, gradients are scattered
//! back into the store where an optimizer consumes them. This indirection is
//! what lets Coherent Fusion back-propagate one loss through the fusion
//! layers *and* both pre-trained heads at once, while Mid-level Fusion keeps
//! the heads frozen simply by injecting them as constants.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to one registered parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One named parameter and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct ParamEntry {
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
}

/// An append-only collection of named parameters.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(ParamEntry { name: name.into(), value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar trainable values.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Adds `g` into the stored gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.entries[id.0].grad.add_scaled_inplace(g, 1.0);
    }

    /// Scales every accumulated gradient (e.g. for gradient averaging
    /// across data-parallel replicas).
    pub fn scale_grads(&mut self, s: f32) {
        for e in &mut self.entries {
            e.grad.map_inplace(|x| x * s);
        }
    }

    /// Clips the global gradient norm to `max_norm`, returning the norm
    /// before clipping.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f64 = self
            .entries
            .iter()
            .map(|e| e.grad.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
            .sum();
        let norm = total.sqrt() as f32;
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale_grads(s);
        }
        norm
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.map_inplace(|_| 0.0);
        }
    }

    /// Iterates over `(ParamId, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &ParamEntry)> {
        self.entries.iter().enumerate().map(|(i, e)| (ParamId(i), e))
    }

    /// Mutable iteration over entries (used by optimizers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut ParamEntry)> {
        self.entries.iter_mut().enumerate().map(|(i, e)| (ParamId(i), e))
    }

    /// Serializable snapshot of all parameter values (name → data+shape).
    pub fn snapshot(&self) -> ParamSnapshot {
        ParamSnapshot {
            params: self
                .entries
                .iter()
                .map(|e| SavedParam {
                    name: e.name.clone(),
                    shape: e.value.shape().to_vec(),
                    data: e.value.data().to_vec(),
                })
                .collect(),
        }
    }

    /// Restores values from a snapshot taken on an identically-constructed
    /// model (names and shapes must match, in order).
    pub fn restore(&mut self, snap: &ParamSnapshot) -> Result<(), String> {
        if snap.params.len() != self.entries.len() {
            return Err(format!(
                "snapshot has {} params, store has {}",
                snap.params.len(),
                self.entries.len()
            ));
        }
        for (e, s) in self.entries.iter_mut().zip(&snap.params) {
            if e.name != s.name {
                return Err(format!("param name mismatch: {} vs {}", e.name, s.name));
            }
            if e.value.shape() != s.shape.as_slice() {
                return Err(format!(
                    "param {} shape mismatch: {:?} vs {:?}",
                    e.name,
                    e.value.shape(),
                    s.shape
                ));
            }
            e.value = Tensor::from_vec(s.data.clone(), &s.shape);
        }
        Ok(())
    }
}

/// One serialized parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedParam {
    pub name: String,
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

/// Serializable snapshot of a whole [`ParamStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSnapshot {
    pub params: Vec<SavedParam>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = ParamStore::new();
        let id = p.add("w", Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(p.value(id).data(), &[1.0, 2.0]);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.num_scalars(), 2);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut p = ParamStore::new();
        let id = p.add("w", Tensor::zeros(&[2]));
        p.accumulate_grad(id, &Tensor::from_slice(&[1.0, -1.0]));
        p.accumulate_grad(id, &Tensor::from_slice(&[0.5, 0.5]));
        assert_eq!(p.grad(id).data(), &[1.5, -0.5]);
        p.zero_grad();
        assert_eq!(p.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p = ParamStore::new();
        let id = p.add("w", Tensor::zeros(&[2]));
        p.accumulate_grad(id, &Tensor::from_slice(&[3.0, 4.0]));
        let before = p.clip_grad_norm(1.0);
        assert!((before - 5.0).abs() < 1e-6);
        assert!((p.grad(id).norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut p = ParamStore::new();
        let id = p.add("w", Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let snap = p.snapshot();
        p.value_mut(id).map_inplace(|_| 0.0);
        p.restore(&snap).unwrap();
        assert_eq!(p.value(id).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn restore_rejects_mismatch() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros(&[2]));
        let snap = a.snapshot();
        let mut b = ParamStore::new();
        b.add("x", Tensor::zeros(&[2]));
        assert!(b.restore(&snap).is_err());
    }
}
