//! Saving and loading parameter snapshots as JSON files.

use crate::params::{ParamSnapshot, ParamStore};
use std::path::Path;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Format(String),
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a parameter snapshot to a JSON file.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let snap = store.snapshot();
    let json = serde_json::to_string(&snap).map_err(|e| CheckpointError::Format(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a snapshot from a JSON file into an identically-built store.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let snap: ParamSnapshot =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    store.restore(&snap).map_err(CheckpointError::Mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    #[test]
    fn save_load_round_trip() {
        let mut r = rng(1);
        let mut a = ParamStore::new();
        let w = a.add("w", Tensor::randn(&[3, 2], &mut r));
        let dir = std::env::temp_dir().join("dftensor_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        save_params(&a, &path).unwrap();

        let mut b = ParamStore::new();
        let wb = b.add("w", Tensor::zeros(&[3, 2]));
        load_params(&mut b, &path).unwrap();
        assert!(b.value(wb).allclose(a.value(w), 0.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let mut s = ParamStore::new();
        let err = load_params(&mut s, "/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
