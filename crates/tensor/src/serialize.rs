//! Saving and loading parameter snapshots: JSON files for human-readable
//! checkpoints, and a checksummed binary format (`DFWT`) whose float
//! payload is raw little-endian `f32` bits — bit-exact across a save/load
//! round trip, which is what the serving snapshot registry requires (a
//! hot-swapped generation must score identically to the store it was
//! published from).

use crate::params::{ParamSnapshot, ParamStore, SavedParam};
use std::path::Path;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Format(String),
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a parameter snapshot to a JSON file.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let snap = store.snapshot();
    let json = serde_json::to_string(&snap).map_err(|e| CheckpointError::Format(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a snapshot from a JSON file into an identically-built store.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let snap: ParamSnapshot =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    store.restore(&snap).map_err(CheckpointError::Mismatch)
}

// ---------------------------------------------------------------------
// Binary weight snapshots (DFWT)
// ---------------------------------------------------------------------

/// Magic bytes opening every binary weight snapshot.
const DFWT_MAGIC: &[u8; 4] = b"DFWT";
/// Binary snapshot format version.
const DFWT_VERSION: u32 = 1;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a snapshot into the `DFWT` binary layout:
///
/// ```text
/// "DFWT" [version u32] [num_params u32]
///   per param: [name_len u32][name utf-8][ndim u32][dims u64...]
///              [f32 data, little-endian bits]
/// [fnv1a64 over everything above, u64]
/// ```
///
/// Float values are written as their raw bits, so decoding reproduces every
/// scalar bit-exactly (including subnormals, signed zeros and NaN payloads).
pub fn encode_snapshot(snap: &ParamSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(DFWT_MAGIC);
    out.extend_from_slice(&DFWT_VERSION.to_le_bytes());
    out.extend_from_slice(&(snap.params.len() as u32).to_le_bytes());
    for p in &snap.params {
        out.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
        out.extend_from_slice(p.name.as_bytes());
        out.extend_from_slice(&(p.shape.len() as u32).to_le_bytes());
        for &d in &p.shape {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in &p.data {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounds-checked cursor reads for [`decode_snapshot`]: every length field
/// is validated against the remaining buffer before use, so a truncated or
/// hostile header can never cause a huge allocation or a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Format("snapshot truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Decodes a `DFWT` buffer, verifying magic, version and checksum.
pub fn decode_snapshot(bytes: &[u8]) -> Result<ParamSnapshot, CheckpointError> {
    if bytes.len() < DFWT_MAGIC.len() + 4 + 4 + 8 {
        return Err(CheckpointError::Format("snapshot too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a64(body) != sum {
        return Err(CheckpointError::Format("snapshot checksum mismatch".into()));
    }
    let mut c = Cursor { buf: body, pos: 0 };
    if c.take(4)? != DFWT_MAGIC {
        return Err(CheckpointError::Format("bad snapshot magic".into()));
    }
    let version = c.u32()?;
    if version != DFWT_VERSION {
        return Err(CheckpointError::Format(format!("unsupported snapshot version {version}")));
    }
    let count = c.u32()? as usize;
    let mut params = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name_len = c.u32()? as usize;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| CheckpointError::Format("param name is not utf-8".into()))?
            .to_string();
        let ndim = c.u32()? as usize;
        if ndim > 8 {
            return Err(CheckpointError::Format(format!("implausible rank {ndim}")));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut numel: u64 = 1;
        for _ in 0..ndim {
            let d = c.u64()?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| CheckpointError::Format("dim overflow".into()))?;
            shape.push(d as usize);
        }
        // The remaining-buffer check inside `take` rejects element counts
        // larger than the file before anything is allocated.
        let raw = c.take(
            (numel as usize)
                .checked_mul(4)
                .ok_or_else(|| CheckpointError::Format("element count overflow".into()))?,
        )?;
        let data = raw
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
            .collect();
        params.push(SavedParam { name, shape, data });
    }
    if c.pos != body.len() {
        return Err(CheckpointError::Format("trailing bytes after last param".into()));
    }
    Ok(ParamSnapshot { params })
}

/// Writes a store's snapshot in the binary `DFWT` format.
pub fn save_params_bin(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, encode_snapshot(&store.snapshot()))?;
    Ok(())
}

/// Loads a binary `DFWT` snapshot into an identically-built store.
pub fn load_params_bin(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let bytes = std::fs::read(path)?;
    let snap = decode_snapshot(&bytes)?;
    store.restore(&snap).map_err(CheckpointError::Mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    #[test]
    fn save_load_round_trip() {
        let mut r = rng(1);
        let mut a = ParamStore::new();
        let w = a.add("w", Tensor::randn(&[3, 2], &mut r));
        let dir = std::env::temp_dir().join("dftensor_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        save_params(&a, &path).unwrap();

        let mut b = ParamStore::new();
        let wb = b.add("w", Tensor::zeros(&[3, 2]));
        load_params(&mut b, &path).unwrap();
        assert!(b.value(wb).allclose(a.value(w), 0.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let mut s = ParamStore::new();
        let err = load_params(&mut s, "/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    /// The binary format must reproduce every stored scalar **bit-exactly**
    /// — including values JSON text round-trips mangle (subnormals, signed
    /// zero, NaN payloads) — because the serving registry hot-swaps these
    /// snapshots into live scorers and the determinism lock compares bits.
    #[test]
    fn binary_round_trip_is_bit_exact() {
        let mut r = rng(7);
        let mut a = ParamStore::new();
        a.add("w", Tensor::randn(&[4, 3], &mut r));
        a.add(
            "edge_cases",
            Tensor::from_slice(&[
                0.0,
                -0.0,
                f32::MIN_POSITIVE / 2.0, // subnormal
                f32::MAX,
                f32::MIN_POSITIVE,
                f32::from_bits(0x7fc0_1234), // NaN with payload
                1.0e-40,
                -3.402_823e38,
            ]),
        );
        a.add("b", Tensor::randn(&[5], &mut r));

        let dir = std::env::temp_dir().join("dftensor_bin_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.dfwt");
        save_params_bin(&a, &path).unwrap();

        let mut b = ParamStore::new();
        b.add("w", Tensor::zeros(&[4, 3]));
        b.add("edge_cases", Tensor::zeros(&[8]));
        b.add("b", Tensor::zeros(&[5]));
        load_params_bin(&mut b, &path).unwrap();
        std::fs::remove_file(path).ok();

        for ((_, ea), (_, eb)) in a.iter().zip(b.iter()) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.value.shape(), eb.value.shape());
            for (x, y) in ea.value.data().iter().zip(eb.value.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "param {} drifted", ea.name);
            }
        }
    }

    #[test]
    fn binary_encode_decode_in_memory() {
        let mut p = ParamStore::new();
        p.add("w", Tensor::from_slice(&[1.5, -2.25, 3.125]));
        let snap = p.snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(decoded.params.len(), 1);
        assert_eq!(decoded.params[0].name, "w");
        assert_eq!(decoded.params[0].data, snap.params[0].data);
    }

    #[test]
    fn binary_corruption_is_rejected() {
        let mut p = ParamStore::new();
        p.add("w", Tensor::from_slice(&[1.0, 2.0]));
        let mut bytes = encode_snapshot(&p.snapshot());
        // Flip one payload bit: the checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(decode_snapshot(&bytes), Err(CheckpointError::Format(_))));
        // Truncation is also a format error, not a panic.
        let ok = encode_snapshot(&p.snapshot());
        assert!(matches!(decode_snapshot(&ok[..ok.len() - 9]), Err(CheckpointError::Format(_))));
    }

    /// A hostile length field must fail cleanly before allocating.
    #[test]
    fn binary_hostile_lengths_are_rejected() {
        let mut p = ParamStore::new();
        p.add("w", Tensor::from_slice(&[1.0]));
        let mut bytes = encode_snapshot(&p.snapshot());
        // Overwrite the dim (u64 at magic+ver+count+namelen+"w"+ndim) with
        // an enormous value and re-stamp the checksum so only the bounds
        // check can reject it.
        let dim_off = 4 + 4 + 4 + 4 + 1 + 4;
        bytes[dim_off..dim_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_snapshot(&bytes), Err(CheckpointError::Format(_))));
    }
}
