//! Shape utilities for dense, row-major tensors.

/// Computes the total number of elements implied by a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes row-major (C-order) strides for a shape.
///
/// The last dimension has stride 1; every other dimension's stride is the
/// product of all dimensions to its right.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Converts a multi-dimensional index to a flat offset, panicking on
/// out-of-bounds indices.
pub fn flat_index(shape: &[usize], idx: &[usize]) -> usize {
    assert_eq!(
        shape.len(),
        idx.len(),
        "index rank {} does not match tensor rank {}",
        idx.len(),
        shape.len()
    );
    let mut off = 0usize;
    let mut stride = 1usize;
    for i in (0..shape.len()).rev() {
        assert!(
            idx[i] < shape[i],
            "index {} out of bounds for dim {} of size {}",
            idx[i],
            i,
            shape[i]
        );
        off += idx[i] * stride;
        stride *= shape[i];
    }
    off
}

/// Converts a flat offset back into a multi-dimensional index.
pub fn unflatten_index(shape: &[usize], mut flat: usize) -> Vec<usize> {
    let mut idx = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        let d = shape[i].max(1);
        idx[i] = flat % d;
        flat /= d;
    }
    idx
}

/// Checks that two shapes are identical, with a readable panic otherwise.
pub fn assert_same_shape(a: &[usize], b: &[usize], op: &str) {
    assert_eq!(a, b, "shape mismatch in {op}: {a:?} vs {b:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        // A rank-0 tensor is a scalar with one element.
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[7]), 7);
        assert_eq!(numel(&[5, 0, 3]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_round_trip() {
        let shape = [3, 4, 5];
        for flat in 0..numel(&shape) {
            let idx = unflatten_index(&shape, flat);
            assert_eq!(flat_index(&shape, &idx), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds_checked() {
        flat_index(&[2, 2], &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn flat_index_rank_checked() {
        flat_index(&[2, 2], &[0]);
    }
}
