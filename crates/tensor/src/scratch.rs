//! Thread-aware scratch-buffer arena for the dense kernels.
//!
//! The GEMM-lowered kernels need short-lived staging buffers on every call:
//! im2col matrices, packed A/B panels, transposed gradient views. Allocating
//! them per call would put the allocator on the training and serving hot
//! paths, so each thread keeps one reusable buffer per [`Slot`] in a
//! thread-local arena. A buffer is *checked out* for the duration of a
//! closure and returned afterwards; repeated calls with the same slot on the
//! same thread (a training loop, a `dfserve` micro-batch stream, a pool
//! worker's band jobs) reuse the allocation.
//!
//! ## Contract
//!
//! * Checked-out buffers are **not** cleared: the slice handed to the
//!   closure may contain bytes from a previous checkout. Callers must fully
//!   overwrite every element they later read (the packing and im2col
//!   routines do this by construction).
//! * Checkout is re-entrant-safe: if a slot is already checked out on this
//!   thread (a nested kernel using the same slot), the inner checkout falls
//!   back to a fresh allocation, counted as a miss.
//! * The arena is telemetry-visible through `dftrace`:
//!   `tensor.scratch.hits` / `tensor.scratch.misses` count checkouts served
//!   from a warm buffer vs. ones that (re)allocated, and
//!   `tensor.scratch.grow_bytes` sums the bytes newly allocated. With
//!   tracing off the counters cost one relaxed load each.

use std::cell::RefCell;

/// Named scratch buffers; each thread owns one buffer per slot. The slots
/// mirror the concurrent buffer needs of one kernel invocation — a conv3d
/// pass can hold `Im2col` + `GemmOut` + `PackB` on the calling thread while
/// band jobs hold `PackA`, without any slot being requested twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// im2col/im2row matrix (`[spatial, in_channels * kernel volume]`).
    Im2col,
    /// GEMM destination staging (e.g. the spatial-major conv output that is
    /// transposed into the tensor layout afterwards).
    GemmOut,
    /// Packed A panels (per band job, inside the GEMM).
    PackA,
    /// Packed B panels (whole-matrix, on the GEMM calling thread).
    PackB,
    /// Transposed upstream gradient (`[spatial, out_channels]`).
    GradT,
}

const NUM_SLOTS: usize = 5;

impl Slot {
    fn index(self) -> usize {
        match self {
            Slot::Im2col => 0,
            Slot::GemmOut => 1,
            Slot::PackA => 2,
            Slot::PackB => 3,
            Slot::GradT => 4,
        }
    }
}

thread_local! {
    /// One parked buffer per slot; `None` while checked out.
    static ARENA: RefCell<[Option<Vec<f32>>; NUM_SLOTS]> = const {
        RefCell::new([Some(Vec::new()), Some(Vec::new()), Some(Vec::new()), Some(Vec::new()), Some(Vec::new())])
    };
}

/// Checks out this thread's buffer for `slot`, resized to exactly `len`
/// elements, and runs `f` on it. Contents are unspecified on entry (see the
/// module contract); the buffer returns to the arena when `f` finishes, so
/// the next checkout on this thread reuses the allocation.
pub fn with<R>(slot: Slot, len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let parked = ARENA.with(|a| a.borrow_mut()[slot.index()].take());
    let was_parked = parked.is_some();
    let mut buf = match parked {
        Some(b) => {
            if b.capacity() >= len {
                dftrace::counter_add("tensor.scratch.hits", 1);
            } else {
                dftrace::counter_add("tensor.scratch.misses", 1);
                dftrace::counter_add(
                    "tensor.scratch.grow_bytes",
                    ((len - b.capacity()) * std::mem::size_of::<f32>()) as u64,
                );
            }
            b
        }
        // Slot already checked out on this thread (nested use): fall back
        // to a fresh allocation that is dropped on return.
        None => {
            dftrace::counter_add("tensor.scratch.misses", 1);
            dftrace::counter_add(
                "tensor.scratch.grow_bytes",
                (len * std::mem::size_of::<f32>()) as u64,
            );
            Vec::new()
        }
    };
    // `resize` zero-fills growth beyond the current length but leaves
    // existing elements as-is — callers must overwrite what they read.
    buf.resize(len, 0.0);
    struct Park {
        slot: usize,
        park: bool,
        buf: Vec<f32>,
    }
    impl Drop for Park {
        fn drop(&mut self) {
            if self.park {
                let buf = std::mem::take(&mut self.buf);
                ARENA.with(|a| a.borrow_mut()[self.slot] = Some(buf));
            }
        }
    }
    let mut guard = Park { slot: slot.index(), park: was_parked, buf };
    f(&mut guard.buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_reused_across_checkouts() {
        let first_ptr = with(Slot::Im2col, 1024, |b| {
            b.fill(1.0);
            b.as_ptr() as usize
        });
        let second_ptr = with(Slot::Im2col, 512, |b| {
            assert_eq!(b.len(), 512);
            b.as_ptr() as usize
        });
        assert_eq!(first_ptr, second_ptr, "same-thread checkout should reuse the allocation");
    }

    #[test]
    fn nested_same_slot_checkout_gets_a_fresh_buffer() {
        with(Slot::PackA, 64, |outer| {
            outer.fill(7.0);
            with(Slot::PackA, 64, |inner| {
                inner.fill(9.0);
            });
            assert!(outer.iter().all(|&v| v == 7.0), "inner checkout must not alias the outer");
        });
    }

    #[test]
    fn distinct_slots_are_live_simultaneously() {
        with(Slot::Im2col, 16, |a| {
            a.fill(1.0);
            with(Slot::PackB, 16, |b| {
                b.fill(2.0);
                assert!(a.iter().all(|&v| v == 1.0));
                assert!(b.iter().all(|&v| v == 2.0));
            });
        });
    }

    #[test]
    fn checkout_resizes_to_requested_length() {
        with(Slot::GradT, 3, |b| assert_eq!(b.len(), 3));
        with(Slot::GradT, 9, |b| assert_eq!(b.len(), 9));
        with(Slot::GradT, 0, |b| assert!(b.is_empty()));
    }
}
