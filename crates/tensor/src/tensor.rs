//! Dense, row-major `f32` tensor used throughout the workspace.
//!
//! This is the substrate that replaces PyTorch's `torch.Tensor` for the
//! reproduction: contiguous storage, explicit shapes, and the raw numeric
//! kernels (elementwise maths, matmul, reductions) that the autodiff layer
//! in [`crate::graph`] builds on.

use crate::rng::normal;
use crate::shape::{assert_same_shape, flat_index, numel, strides};
use rand::Rng;

/// A dense, row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} values])", self.data.len())
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape; lengths must agree.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape: shape.to_vec() }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Self { data: vec![v], shape: vec![] }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { data: vec![0.0; numel(shape)], shape: shape.to_vec() }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Self { data: vec![v; numel(shape)], shape: shape.to_vec() }
    }

    /// Creates a tensor of i.i.d. standard-normal samples.
    pub fn randn(shape: &[usize], rng: &mut impl Rng) -> Self {
        let data = (0..numel(shape)).map(|_| normal(rng) as f32).collect();
        Self { data, shape: shape.to_vec() }
    }

    /// Creates a tensor of uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let data = (0..numel(shape)).map(|_| lo + (hi - lo) * rng.gen::<f32>()).collect();
        Self { data, shape: shape.to_vec() }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Tensor rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[flat_index(&self.shape, idx)]
    }

    /// Mutable element access by multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = flat_index(&self.shape, idx);
        &mut self.data[off]
    }

    /// The single value of a scalar or one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires exactly one element, shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides(&self.shape)
    }

    // ------------------------------------------------------------------
    // Shape manipulation (contiguous, so these are cheap/metadata-only)
    // ------------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?}",
            self.shape,
            self.data.len(),
            shape
        );
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor {
        self.reshape(&[self.data.len()])
    }

    /// Transposes a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires rank 2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise maths
    // ------------------------------------------------------------------

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_same_shape(&self.shape, &other.shape, "zip");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds `other * scale` into `self` in place (axpy).
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) {
        assert_same_shape(&self.shape, &other.shape, "add_scaled_inplace");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.sum() / self.data.len() as f32
    }

    /// Maximum element; NaNs are ignored unless all values are NaN.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        (self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()).sqrt() as f32
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Lowered onto the packed, cache-blocked GEMM in `ops::gemm` (see its
    /// module docs for the blocking scheme and the accumulation-order
    /// contract). The dense path multiplies every element — there is no
    /// zero-skip; sparse gather/scatter lives in `ops::segment`, which never
    /// routes through matmul.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let _t = dftrace::span("tensor.matmul");
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        crate::ops::gemm::gemm_nn(m, k, n, &self.data, &other.data, &mut out);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// `self^T x other` without materializing the transpose: for
    /// `self: [k,m]`, `other: [k,n]` yields `[m,n]`. Same GEMM core as
    /// [`Tensor::matmul`]; the transpose is absorbed into the A-panel pack.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let _t = dftrace::span("tensor.matmul_tn");
        assert_eq!(self.rank(), 2);
        assert_eq!(other.rank(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        crate::ops::gemm::gemm_tn(m, k, n, &self.data, &other.data, &mut out);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// `self x other^T`: for `self: [m,k]`, `other: [n,k]` yields `[m,n]`.
    /// Same GEMM core as [`Tensor::matmul`]; the transpose is absorbed into
    /// the B-panel pack.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let _t = dftrace::span("tensor.matmul_nt");
        assert_eq!(self.rank(), 2);
        assert_eq!(other.rank(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        crate::ops::gemm::gemm_nt(m, k, n, &self.data, &other.data, &mut out);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Row slice of a rank-2 tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires rank 2");
        let n = self.shape[1];
        &self.data[i * n..(i + 1) * n]
    }

    /// Checks approximate equality within an absolute tolerance.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_checks_length() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(b.div(&a).data(), &[4., 2.5, 2.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.add_scalar(1.0).data(), &[2., 3., 4.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1., -2., 3., 4.]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree() {
        let mut r = rng(11);
        let a = Tensor::randn(&[4, 6], &mut r);
        let b = Tensor::randn(&[6, 5], &mut r);
        let base = a.matmul(&b);
        let tn = a.transpose2().matmul_tn(&b);
        let nt = a.matmul_nt(&b.transpose2());
        assert!(base.allclose(&tn, 1e-4));
        assert!(base.allclose(&nt, 1e-4));
    }

    #[test]
    fn transpose_round_trip() {
        let mut r = rng(5);
        let a = Tensor::randn(&[3, 7], &mut r);
        assert!(a.transpose2().transpose2().allclose(&a, 0.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1., 2., 3., 4.]);
        let r = t.reshape(&[2, 2]);
        assert_eq!(r.at(&[1, 0]), 3.0);
        assert_eq!(r.flatten().data(), t.data());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
