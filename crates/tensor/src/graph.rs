//! Reverse-mode automatic differentiation on a tape of tensor operations.
//!
//! A [`Graph`] is a per-forward-pass tape: every operation appends a node
//! holding its output value, its parent node ids, and a backward closure
//! mapping the output gradient to parent gradients. Because nodes are
//! appended in execution order the tape is already topologically sorted, so
//! [`Graph::backward`] is a single reverse sweep.
//!
//! Parameters are injected per pass with [`Graph::param`]; their gradients
//! are collected by [`Gradients::accumulate_into`]. Freezing a sub-model
//! (Late/Mid-level Fusion keep the 3D-CNN and SG-CNN heads fixed) is done by
//! injecting weights with [`Graph::param_frozen`], which records no param
//! link and therefore receives no updates — the Coherent Fusion model is the
//! same network injected with [`Graph::param`] everywhere.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Identifier of a node on the tape.
pub type VarId = usize;

/// Context handed to backward closures.
pub struct BackCtx<'a> {
    /// Gradient of the loss w.r.t. this node's output.
    pub grad: &'a Tensor,
    /// This node's forward output value.
    pub out: &'a Tensor,
    /// Forward values of the node's parents, in parent order.
    pub parents: Vec<&'a Tensor>,
}

type BackFn = Box<dyn Fn(&BackCtx) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<VarId>,
    backward: Option<BackFn>,
    param: Option<ParamId>,
}

/// A single-pass autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(64) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Injects a leaf tensor with no gradient tracking (inputs, labels,
    /// constants).
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.nodes.push(Node { value, parents: vec![], backward: None, param: None });
        self.nodes.len() - 1
    }

    /// Injects a trainable parameter: its gradient will be reported under
    /// the given [`ParamId`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.nodes.push(Node {
            value: store.value(id).clone(),
            parents: vec![],
            backward: None,
            param: Some(id),
        });
        self.nodes.len() - 1
    }

    /// Injects a parameter as a frozen constant — gradient flows *through*
    /// ops using it but is not reported for the parameter itself.
    pub fn param_frozen(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.input(store.value(id).clone())
    }

    /// Appends an operation node.
    pub fn push_op(&mut self, parents: Vec<VarId>, value: Tensor, backward: BackFn) -> VarId {
        debug_assert!(parents.iter().all(|&p| p < self.nodes.len()), "parent id out of range");
        self.nodes.push(Node { value, parents, backward: Some(backward), param: None });
        self.nodes.len() - 1
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Runs the reverse sweep from a scalar loss node.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.nodes[loss].value.numel(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            self.nodes[loss].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss] = Some(Tensor::ones(self.nodes[loss].value.shape()));

        for i in (0..=loss).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(back) = &node.backward {
                let ctx = BackCtx {
                    grad: &g,
                    out: &node.value,
                    parents: node.parents.iter().map(|&p| &self.nodes[p].value).collect(),
                };
                let parent_grads = back(&ctx);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward closure returned {} grads for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (&p, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(
                        pg.shape(),
                        self.nodes[p].value.shape(),
                        "gradient shape mismatch for parent {p}"
                    );
                    match &mut grads[p] {
                        Some(acc) => acc.add_scaled_inplace(&pg, 1.0),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            // Leaves keep their gradient for collection below.
            if node.backward.is_none() {
                grads[i] = Some(g);
            }
        }

        Gradients { grads, params: self.nodes.iter().map(|n| n.param).collect() }
    }
}

/// Result of a backward sweep: per-node gradients plus the param links.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    params: Vec<Option<ParamId>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. an arbitrary node (present only for
    /// leaves after the sweep, or internal nodes touched by it).
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Adds every parameter gradient into the store's accumulators.
    pub fn accumulate_into(&self, store: &mut ParamStore) {
        for (i, p) in self.params.iter().enumerate() {
            if let (Some(pid), Some(g)) = (p, &self.grads[i]) {
                store.accumulate_grad(*pid, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops; // brings `impl Graph` op blocks into compilation
    use crate::rng::rng;

    // Silence unused import if ops only contributes inherent impls.
    #[allow(unused)]
    fn _touch_ops() {
        let _ = std::any::type_name::<fn()>;
        let _ = &ops::GradCheck::default;
    }

    #[test]
    fn constant_graph_has_no_param_grads() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(3.0));
        let grads = g.backward(x);
        assert!(grads.grad(x).is_some());
    }

    #[test]
    fn chain_of_scales_multiplies_gradients() {
        // y = 2 * (3 * x); dy/dx = 6
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(5.0));
        let a = g.scale(x, 3.0);
        let y = g.scale(a, 2.0);
        assert_eq!(g.value(y).item(), 30.0);
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().item(), 6.0);
    }

    #[test]
    fn diamond_accumulates_both_paths() {
        // y = x + x; dy/dx = 2
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(4.0));
        let y = g.add(x, x);
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn frozen_params_receive_no_updates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wf = g.param_frozen(&store, w);
        let x = g.input(Tensor::scalar(3.0));
        let y = g.mul(wf, x);
        let grads = g.backward(y);
        grads.accumulate_into(&mut store);
        assert_eq!(store.grad(w).data(), &[0.0]);
    }

    #[test]
    fn trainable_params_receive_updates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let x = g.input(Tensor::scalar(3.0));
        let y = g.mul(wv, x);
        let grads = g.backward(y);
        grads.accumulate_into(&mut store);
        assert_eq!(store.grad(w).data(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[1.0, 2.0]));
        g.backward(x);
    }

    #[test]
    fn gradients_flow_through_deep_random_graph() {
        let mut r = rng(77);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::randn(&[4, 8], &mut r));
        let w2 = store.add("w2", Tensor::randn(&[8, 1], &mut r));
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[2, 4], &mut r));
        let w1v = g.param(&store, w1);
        let w2v = g.param(&store, w2);
        let h = g.matmul(x, w1v);
        let h = g.relu(h);
        let o = g.matmul(h, w2v);
        let loss = g.mean_all(o);
        let grads = g.backward(loss);
        grads.accumulate_into(&mut store);
        assert!(store.grad(w2).norm() > 0.0);
    }
}
