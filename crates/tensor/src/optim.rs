//! First-order optimizers over a [`ParamStore`].
//!
//! The set mirrors Table 1 of the paper: the fusion-layer search space
//! offered Adam, AdamW, RMSprop and Adadelta; the individual heads used
//! Adam. Every optimizer exposes a mutable learning rate because PB2
//! perturbs hyper-parameters *during* training — exploit/explore steps can
//! rescale the learning rate of a running trial.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Common interface: consume accumulated gradients, update values.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the store (the caller is responsible for `zero_grad` afterwards).
    fn step(&mut self, params: &mut ParamStore);
    /// Current base learning rate.
    fn lr(&self) -> f32;
    /// Overrides the base learning rate (used by PB2 perturbations).
    fn set_lr(&mut self, lr: f32);
    /// Human-readable optimizer name.
    fn name(&self) -> &'static str;
}

/// Which optimizer to build — the hyper-parameter form (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    Sgd,
    Adam,
    AdamW,
    RmsProp,
    Adadelta,
}

impl OptimizerKind {
    /// Options offered to the fusion-layer hyper-parameter search.
    pub fn fusion_options() -> [OptimizerKind; 4] {
        [OptimizerKind::Adam, OptimizerKind::AdamW, OptimizerKind::RmsProp, OptimizerKind::Adadelta]
    }

    /// Builds an optimizer of this kind with the given learning rate.
    pub fn build(self, lr: f32) -> Box<dyn Optimizer + Send> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new(lr, 0.9)),
            OptimizerKind::Adam => Box::new(Adam::new(lr)),
            OptimizerKind::AdamW => Box::new(AdamW::new(lr, 1e-2)),
            OptimizerKind::RmsProp => Box::new(RmsProp::new(lr)),
            OptimizerKind::Adadelta => Box::new(Adadelta::new(lr)),
        }
    }
}

fn ensure_state<'a>(
    state: &'a mut Vec<Option<Tensor>>,
    idx: usize,
    shape: &[usize],
) -> &'a mut Tensor {
    if state.len() <= idx {
        state.resize_with(idx + 1, || None);
    }
    state[idx].get_or_insert_with(|| Tensor::zeros(shape))
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore) {
        for (id, e) in params.iter_mut() {
            let v = ensure_state(&mut self.velocity, id.0, e.grad.shape());
            for (vi, &gi) in v.data_mut().iter_mut().zip(e.grad.data()) {
                *vi = self.momentum * *vi + gi;
            }
            e.value.add_scaled_inplace(v, -self.lr);
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam (Kingma & Ba 2014).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, e) in params.iter_mut() {
            let m = ensure_state(&mut self.m, id.0, e.grad.shape());
            for (mi, &gi) in m.data_mut().iter_mut().zip(e.grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let m_snapshot = m.clone();
            let v = ensure_state(&mut self.v, id.0, e.grad.shape());
            for (vi, &gi) in v.data_mut().iter_mut().zip(e.grad.data()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            for ((val, &mi), &vi) in
                e.value.data_mut().iter_mut().zip(m_snapshot.data()).zip(v.data())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *val -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
    fn name(&self) -> &'static str {
        "adam"
    }
}

/// AdamW (Loshchilov & Hutter 2017): Adam with decoupled weight decay.
pub struct AdamW {
    inner: Adam,
    weight_decay: f32,
}

impl AdamW {
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { inner: Adam::new(lr), weight_decay }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut ParamStore) {
        // Decoupled decay applied directly to the weights.
        let decay = self.inner.lr * self.weight_decay;
        for (_, e) in params.iter_mut() {
            e.value.map_inplace(|w| w * (1.0 - decay));
        }
        self.inner.step(params);
    }
    fn lr(&self) -> f32 {
        self.inner.lr()
    }
    fn set_lr(&mut self, lr: f32) {
        self.inner.set_lr(lr);
    }
    fn name(&self) -> &'static str {
        "adamw"
    }
}

/// RMSprop (Graves 2013 variant without momentum).
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    sq: Vec<Option<Tensor>>,
}

impl RmsProp {
    pub fn new(lr: f32) -> Self {
        Self { lr, alpha: 0.99, eps: 1e-8, sq: Vec::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut ParamStore) {
        for (id, e) in params.iter_mut() {
            let s = ensure_state(&mut self.sq, id.0, e.grad.shape());
            for (si, &gi) in s.data_mut().iter_mut().zip(e.grad.data()) {
                *si = self.alpha * *si + (1.0 - self.alpha) * gi * gi;
            }
            for ((val, &gi), &si) in e.value.data_mut().iter_mut().zip(e.grad.data()).zip(s.data())
            {
                *val -= self.lr * gi / (si.sqrt() + self.eps);
            }
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

/// Adadelta (Zeiler 2012): the `lr` acts as a global scale on the adaptive
/// step, matching PyTorch's parameterization.
pub struct Adadelta {
    lr: f32,
    rho: f32,
    eps: f32,
    acc_grad: Vec<Option<Tensor>>,
    acc_delta: Vec<Option<Tensor>>,
}

impl Adadelta {
    pub fn new(lr: f32) -> Self {
        Self { lr, rho: 0.9, eps: 1e-6, acc_grad: Vec::new(), acc_delta: Vec::new() }
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, params: &mut ParamStore) {
        for (id, e) in params.iter_mut() {
            let ag = ensure_state(&mut self.acc_grad, id.0, e.grad.shape());
            for (ai, &gi) in ag.data_mut().iter_mut().zip(e.grad.data()) {
                *ai = self.rho * *ai + (1.0 - self.rho) * gi * gi;
            }
            let ag_snapshot = ag.clone();
            let ad = ensure_state(&mut self.acc_delta, id.0, e.grad.shape());
            for (((val, &gi), &agi), adi) in e
                .value
                .data_mut()
                .iter_mut()
                .zip(e.grad.data())
                .zip(ag_snapshot.data())
                .zip(ad.data_mut())
            {
                let delta = ((*adi + self.eps).sqrt() / (agi + self.eps).sqrt()) * gi;
                *adi = self.rho * *adi + (1.0 - self.rho) * delta * delta;
                *val -= self.lr * delta;
            }
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
    fn name(&self) -> &'static str {
        "adadelta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::rng::rng;
    use crate::tensor::Tensor;

    /// Minimizes f(w) = ||w - target||² with each optimizer and checks the
    /// loss decreases substantially.
    fn optimize_quadratic(kind: OptimizerKind) -> f32 {
        let mut r = rng(42);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::randn(&[8], &mut r));
        let target = Tensor::randn(&[8], &mut r);
        // Adadelta's effective step is self-scaling; its conventional base
        // rate is 1.0 (PyTorch default) where the others use small rates.
        let lr = if kind == OptimizerKind::Adadelta { 1.0 } else { 0.05 };
        // Adadelta's accumulators also make early steps tiny, so give it a
        // longer horizon than the rest.
        let steps = if kind == OptimizerKind::Adadelta { 3000 } else { 300 };
        let mut opt = kind.build(lr);
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            let mut g = Graph::new();
            let wv = g.param(&ps, w);
            let t = g.input(target.clone());
            let loss = g.mse_loss(wv, t);
            last = g.value(loss).item();
            ps.zero_grad();
            g.backward(loss).accumulate_into(&mut ps);
            opt.step(&mut ps);
        }
        last
    }

    #[test]
    fn all_optimizers_converge_on_quadratic() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::RmsProp,
            OptimizerKind::Adadelta,
        ] {
            let loss = optimize_quadratic(kind);
            assert!(loss < 0.05, "{kind:?} ended at loss {loss}");
        }
    }

    #[test]
    fn set_lr_round_trips() {
        let mut opt = OptimizerKind::Adam.build(1e-3);
        assert!((opt.lr() - 1e-3).abs() < 1e-9);
        opt.set_lr(5e-4);
        assert!((opt.lr() - 5e-4).abs() < 1e-9);
    }

    #[test]
    fn adamw_decays_weights_without_gradients() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::ones(&[4]));
        let mut opt = AdamW::new(0.1, 0.5);
        opt.step(&mut ps); // zero grads: only decay acts
        assert!(ps.value(w).data().iter().all(|&v| v < 1.0));
    }

    #[test]
    fn fusion_options_match_table1() {
        let opts = OptimizerKind::fusion_options();
        assert_eq!(opts.len(), 4);
        assert!(opts.contains(&OptimizerKind::Adam));
        assert!(opts.contains(&OptimizerKind::AdamW));
        assert!(opts.contains(&OptimizerKind::RmsProp));
        assert!(opts.contains(&OptimizerKind::Adadelta));
    }
}
