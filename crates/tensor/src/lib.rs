//! `dftensor` — the deep-learning substrate for the Deep Fusion
//! reproduction.
//!
//! A small, deterministic, CPU-only replacement for the slice of PyTorch the
//! SC'21 paper depends on:
//!
//! * dense `f32` [`Tensor`]s with the raw kernels (matmul, conv3d, pooling,
//!   segment gather/scatter) the fusion models need,
//! * a tape-based reverse-mode autodiff [`Graph`],
//! * layer building blocks in [`nn`] (Linear, Conv3d, BatchNorm, Dropout),
//! * the optimizer family from the paper's Table 1 in [`optim`],
//! * seeded randomness helpers in [`rng`] shared by the whole workspace.
//!
//! Design notes: a `Graph` is built per forward pass; parameters live in a
//! [`ParamStore`] and are injected either trainable or frozen, which is how
//! the Late/Mid-level (frozen heads) vs. Coherent (end-to-end) fusion
//! variants are expressed with one code path.

pub mod graph;
pub mod init;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod params;
pub mod rng;
pub mod scratch;
pub mod serialize;
pub mod shape;
pub mod tensor;

pub use graph::{BackCtx, Gradients, Graph, VarId};
pub use nn::{Activation, BatchNorm, Conv3d, Dropout, Linear};
pub use ops::{BatchNormOut, GradCheck};
pub use optim::{Adadelta, Adam, AdamW, Optimizer, OptimizerKind, RmsProp, Sgd};
pub use params::{ParamId, ParamSnapshot, ParamStore};
pub use serialize::{load_params, save_params, CheckpointError};
pub use tensor::Tensor;
