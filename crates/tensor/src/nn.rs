//! Reusable neural-network layers built on the autodiff graph.
//!
//! Layers own [`ParamId`]s into a shared [`ParamStore`]; the `frozen`
//! argument of each `forward` decides whether those parameters are injected
//! as trainable leaves or constants. This is the mechanism behind the
//! paper's three fusion variants: Late/Mid-level Fusion run the 3D-CNN and
//! SG-CNN heads frozen, Coherent Fusion runs the identical network with
//! every head unfrozen so one loss back-propagates end to end.

use crate::graph::{Graph, VarId};
use crate::init::{bias_uniform, kaiming_uniform};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Injects a parameter as trainable or frozen.
fn inject(g: &mut Graph, ps: &ParamStore, id: ParamId, frozen: bool) -> VarId {
    if frozen {
        g.param_frozen(ps, id)
    } else {
        g.param(ps, id)
    }
}

/// Fully-connected layer.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), kaiming_uniform(&[in_dim, out_dim], in_dim, rng));
        let b = ps.add(format!("{name}.b"), bias_uniform(out_dim, in_dim, rng));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies `x·W + b` to a `[batch, in_dim]` input.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId, frozen: bool) -> VarId {
        let w = inject(g, ps, self.w, frozen);
        let b = inject(g, ps, self.b, frozen);
        g.linear(x, w, b)
    }
}

/// 3-D convolution layer (stride 1, symmetric padding).
#[derive(Debug, Clone)]
pub struct Conv3d {
    pub w: ParamId,
    pub b: ParamId,
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub pad: usize,
}

impl Conv3d {
    /// Creates a layer with Kaiming-uniform kernels; `pad = kernel / 2`
    /// keeps spatial dimensions for odd kernels.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel * kernel;
        let w = ps.add(
            format!("{name}.w"),
            kaiming_uniform(&[out_channels, in_channels, kernel, kernel, kernel], fan_in, rng),
        );
        let b = ps.add(format!("{name}.b"), bias_uniform(out_channels, fan_in, rng));
        Self { w, b, in_channels, out_channels, kernel, pad }
    }

    /// Applies the convolution to a `[N,C,D,H,W]` input.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId, frozen: bool) -> VarId {
        let w = inject(g, ps, self.w, frozen);
        let b = inject(g, ps, self.b, frozen);
        g.conv3d(x, w, b, self.pad)
    }
}

/// Batch normalization layer with running statistics.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub running_mean: Tensor,
    pub running_var: Tensor,
    pub momentum: f32,
    pub eps: f32,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` features/channels.
    pub fn new(ps: &mut ParamStore, name: &str, channels: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[channels]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[channels]));
        Self {
            gamma,
            beta,
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Applies batch norm; in training mode also updates the running
    /// statistics in place.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        train: bool,
        frozen: bool,
    ) -> VarId {
        let gamma = inject(g, ps, self.gamma, frozen);
        let beta = inject(g, ps, self.beta, frozen);
        let out =
            g.batch_norm(x, gamma, beta, &self.running_mean, &self.running_var, self.eps, train);
        if let (Some(m), Some(v)) = (out.batch_mean, out.batch_var) {
            let mom = self.momentum;
            self.running_mean = self.running_mean.scale(1.0 - mom).add(&m.scale(mom));
            self.running_var = self.running_var.scale(1.0 - mom).add(&v.scale(mom));
        }
        out.out
    }
}

/// Dropout layer.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    pub rate: f32,
}

impl Dropout {
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Self { rate }
    }

    /// Applies inverted dropout in training mode.
    pub fn forward(&self, g: &mut Graph, x: VarId, train: bool, rng: &mut impl Rng) -> VarId {
        g.dropout(x, self.rate, train, rng)
    }
}

/// Activation functions selectable by the hyper-parameter search (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    Relu,
    LeakyRelu,
    Selu,
}

impl Activation {
    /// Applies the activation on the graph.
    pub fn apply(self, g: &mut Graph, x: VarId) -> VarId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu => g.leaky_relu(x, 0.01),
            Activation::Selu => g.selu(x),
        }
    }

    /// All options offered to the optimizer for fusion layers.
    pub fn all() -> [Activation; 3] {
        [Activation::Relu, Activation::LeakyRelu, Activation::Selu]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;

    #[test]
    fn linear_shapes_and_training_reduces_loss() {
        let mut r = rng(1);
        let mut ps = ParamStore::new();
        let layer = Linear::new(&mut ps, "fc", 3, 2, &mut r);
        let x = Tensor::randn(&[5, 3], &mut r);
        let target = Tensor::randn(&[5, 2], &mut r);

        let loss_value = |ps: &ParamStore| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = layer.forward(&mut g, ps, xv, false);
            let t = g.input(target.clone());
            let l = g.mse_loss(y, t);
            g.value(l).item()
        };
        let before = loss_value(&ps);
        // A few steps of plain gradient descent should reduce the loss.
        for _ in 0..50 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = layer.forward(&mut g, &ps, xv, false);
            let t = g.input(target.clone());
            let l = g.mse_loss(y, t);
            ps.zero_grad();
            g.backward(l).accumulate_into(&mut ps);
            for (_, e) in ps.iter_mut() {
                let g = e.grad.clone();
                e.value.add_scaled_inplace(&g, -0.05);
            }
        }
        assert!(loss_value(&ps) < before * 0.5, "training did not reduce loss");
    }

    #[test]
    fn frozen_linear_accumulates_no_grad() {
        let mut r = rng(2);
        let mut ps = ParamStore::new();
        let layer = Linear::new(&mut ps, "fc", 2, 2, &mut r);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[3, 2], &mut r));
        let y = layer.forward(&mut g, &ps, x, true);
        let l = g.mean_all(y);
        g.backward(l).accumulate_into(&mut ps);
        assert_eq!(ps.grad(layer.w).norm(), 0.0);
    }

    #[test]
    fn batch_norm_updates_running_stats_in_train_only() {
        let mut r = rng(3);
        let mut ps = ParamStore::new();
        let mut bn = BatchNorm::new(&mut ps, "bn", 2);
        let x = Tensor::randn(&[16, 2], &mut r).add_scalar(3.0);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        bn.forward(&mut g, &ps, xv, true, false);
        assert!(bn.running_mean.data()[0] != 0.0, "running mean should move");
        let rm = bn.running_mean.clone();
        let mut g2 = Graph::new();
        let xv2 = g2.input(x);
        bn.forward(&mut g2, &ps, xv2, false, false);
        assert!(bn.running_mean.allclose(&rm, 0.0), "eval must not move stats");
    }

    #[test]
    fn conv_layer_output_shape() {
        let mut r = rng(4);
        let mut ps = ParamStore::new();
        let conv = Conv3d::new(&mut ps, "c1", 2, 4, 3, 1, &mut r);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[1, 2, 6, 6, 6], &mut r));
        let y = conv.forward(&mut g, &ps, x, false);
        assert_eq!(g.value(y).shape(), &[1, 4, 6, 6, 6]);
    }

    #[test]
    fn activation_variants_run() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[-1.0, 0.0, 1.0]));
        for act in Activation::all() {
            let y = act.apply(&mut g, x);
            assert_eq!(g.value(y).numel(), 3);
        }
    }
}
