//! Bit-exactness proptests for the blocked GEMM and the im2col-lowered
//! conv3d kernels against the naive reference oracle in
//! [`dftensor::ops::reference`].
//!
//! Every comparison here is `to_bits()` equality — no tolerances. The
//! optimized kernels promise the *same floats* as the reference (single
//! ascending-k accumulator per output element), and the same floats again
//! under any pool thread count. Shapes are drawn to cross the blocking
//! boundaries: `k` spans multiple KC=256 blocks, `m`/`n` straddle the
//! MR=4 / NR=8 register tiles and the MC=64 row block, and conv shapes
//! include pads larger than the kernel (receptive fields entirely inside
//! the zero padding). Conv stride is fixed at 1 by design (the paper's
//! 3D-CNN pools instead of striding), so stride is not a parameter.

use dfpool::Pool;
use dftensor::ops::{conv3d_backward_input, conv3d_backward_weight, conv3d_forward, reference};
use dftensor::rng::rng;
use dftensor::Tensor;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared pools so the hundreds of proptest cases don't spawn threads each.
fn pool(threads: usize) -> &'static Pool {
    static POOLS: OnceLock<Vec<Pool>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| [1usize, 2, 4, 8].into_iter().map(Pool::new).collect());
    match threads {
        1 => &pools[0],
        2 => &pools[1],
        4 => &pools[2],
        _ => &pools[3],
    }
}

/// Collects a tensor's exact bit pattern.
fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Asserts `f` produces the reference bits serially and on 2/4-thread pools.
fn assert_matches_reference(want: &Tensor, f: impl Fn() -> Tensor) -> Result<(), TestCaseError> {
    let serial = pool(1).install(&f);
    prop_assert_eq!(bits(&serial), bits(want), "serial result differs from reference");
    for threads in [2usize, 4] {
        let pooled = pool(threads).install(&f);
        prop_assert_eq!(
            bits(&pooled),
            bits(want),
            "{}-thread result differs from reference",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM == naive triple loop, bitwise, for all three layout
    /// variants, serial and pooled. `k` up to 600 crosses two KC blocks.
    #[test]
    fn gemm_variants_match_reference_bitwise(
        seed in 0u64..1000,
        m in 1usize..70,
        k in 1usize..600,
        n in 1usize..40,
    ) {
        let mut r = rng(seed);
        let a = Tensor::randn(&[m, k], &mut r);
        let b = Tensor::randn(&[k, n], &mut r);
        let at = Tensor::randn(&[k, m], &mut r);
        let bt = Tensor::randn(&[n, k], &mut r);

        assert_matches_reference(&reference::matmul(&a, &b), || a.matmul(&b))?;
        assert_matches_reference(&reference::matmul_tn(&at, &b), || at.matmul_tn(&b))?;
        assert_matches_reference(&reference::matmul_nt(&a, &bt), || a.matmul_nt(&bt))?;
    }

    /// GEMM handles zeros exactly: the dense path has no zero-skip, and
    /// adding the `±0.0` products must not flip any bit.
    #[test]
    fn gemm_with_zero_entries_matches_reference_bitwise(
        seed in 0u64..1000,
        m in 1usize..20,
        k in 1usize..50,
        n in 1usize..20,
    ) {
        let mut r = rng(seed);
        let mut a = Tensor::randn(&[m, k], &mut r);
        let b = Tensor::randn(&[k, n], &mut r);
        // Zero every third element, half of them negative zero.
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = if i % 2 == 0 { 0.0 } else { -0.0 };
            }
        }
        assert_matches_reference(&reference::matmul(&a, &b), || a.matmul(&b))?;
    }

    /// im2col-lowered conv3d forward == reference, bitwise, over random
    /// shapes and pads (including pad > kernel), serial and pooled.
    #[test]
    fn conv3d_forward_matches_reference_bitwise(
        seed in 0u64..1000,
        bn in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        d in 1usize..7,
        h in 1usize..7,
        w in 1usize..7,
        kd in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        pad in 0usize..3,
    ) {
        prop_assume!(kd <= d + 2 * pad && kh <= h + 2 * pad && kw <= w + 2 * pad);
        let mut r = rng(seed);
        let x = Tensor::randn(&[bn, c, d, h, w], &mut r);
        let wt = Tensor::randn(&[o, c, kd, kh, kw], &mut r);
        let want = reference::conv3d_forward(&x, &wt, pad);
        assert_matches_reference(&want, || conv3d_forward(&x, &wt, pad))?;
    }

    /// conv3d backward passes (input + weight gradients) == reference,
    /// bitwise, serial and pooled.
    #[test]
    fn conv3d_backward_matches_reference_bitwise(
        seed in 0u64..1000,
        bn in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        d in 1usize..6,
        h in 1usize..6,
        w in 1usize..6,
        kd in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        pad in 0usize..3,
    ) {
        prop_assume!(kd <= d + 2 * pad && kh <= h + 2 * pad && kw <= w + 2 * pad);
        let mut r = rng(seed);
        let x = Tensor::randn(&[bn, c, d, h, w], &mut r);
        let wt = Tensor::randn(&[o, c, kd, kh, kw], &mut r);
        let y = reference::conv3d_forward(&x, &wt, pad);
        let gout = Tensor::randn(y.shape(), &mut r);

        let want_gx = reference::conv3d_backward_input(&gout, &wt, x.shape(), pad);
        assert_matches_reference(&want_gx, || {
            conv3d_backward_input(&gout, &wt, x.shape(), pad)
        })?;

        let want_gw = reference::conv3d_backward_weight(&gout, &x, wt.shape(), pad);
        assert_matches_reference(&want_gw, || {
            conv3d_backward_weight(&gout, &x, wt.shape(), pad)
        })?;
    }
}

/// One fixed large case crossing every blocking boundary at once
/// (k > 2·KC, m > MC, n not a multiple of NR) — kept outside proptest so a
/// regression names a deterministic failure.
#[test]
fn gemm_blocking_boundaries_fixed_case() {
    let mut r = rng(1234);
    let a = Tensor::randn(&[97, 531], &mut r);
    let b = Tensor::randn(&[531, 37], &mut r);
    let want = reference::matmul(&a, &b);
    for threads in [1usize, 2, 4, 8] {
        let got = pool(threads).install(|| a.matmul(&b));
        assert_eq!(bits(&got), bits(&want), "threads {threads}");
    }
}

/// Fixed conv case with asymmetric spatial dims and kernel.
#[test]
fn conv3d_asymmetric_fixed_case() {
    let mut r = rng(4321);
    let x = Tensor::randn(&[2, 3, 6, 4, 5], &mut r);
    let w = Tensor::randn(&[4, 3, 3, 1, 2], &mut r);
    for pad in 0..=1 {
        let want = reference::conv3d_forward(&x, &w, pad);
        let y = pool(4).install(|| conv3d_forward(&x, &w, pad));
        assert_eq!(bits(&y), bits(&want), "pad {pad}");
        let gout = Tensor::randn(want.shape(), &mut r);
        let want_gx = reference::conv3d_backward_input(&gout, &w, x.shape(), pad);
        let want_gw = reference::conv3d_backward_weight(&gout, &x, w.shape(), pad);
        let gx = pool(4).install(|| conv3d_backward_input(&gout, &w, x.shape(), pad));
        let gw = pool(4).install(|| conv3d_backward_weight(&gout, &x, w.shape(), pad));
        assert_eq!(bits(&gx), bits(&want_gx), "gx pad {pad}");
        assert_eq!(bits(&gw), bits(&want_gw), "gw pad {pad}");
    }
}
