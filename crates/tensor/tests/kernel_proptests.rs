//! Differential bit-exactness tests for the blocked GEMM and the
//! im2col-lowered conv3d kernels against the naive reference oracle in
//! [`dftensor::ops::reference`].
//!
//! Every comparison here is `to_bits()` equality — no tolerances. The
//! optimized kernels promise the *same floats* as the reference (single
//! ascending-k accumulator per output element), and the same floats again
//! under any pool thread count **and any micro-kernel edition**: each case
//! runs the full cross of [`microkernel::available_paths`] (scalar always;
//! SSE2/AVX or NEON when built with `--features simd`) × 1/2/4/8-thread
//! pools. Shapes are drawn to cross the blocking boundaries: `k` spans
//! multiple KC=256 blocks, `m`/`n` straddle the MR=4 / NR=8 register tiles
//! and the MC=64 row block, and conv shapes include pads larger than the
//! kernel (receptive fields entirely inside the zero padding). Conv stride
//! is fixed at 1 by design (the paper's 3D-CNN pools instead of striding),
//! so stride is not a parameter.

use dfpool::Pool;
use dftensor::ops::microkernel;
use dftensor::ops::{conv3d_backward_input, conv3d_backward_weight, conv3d_forward, reference};
use dftensor::rng::rng;
use dftensor::Tensor;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared pools so the hundreds of proptest cases don't spawn threads each.
fn pool(threads: usize) -> &'static Pool {
    static POOLS: OnceLock<Vec<Pool>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| [1usize, 2, 4, 8].into_iter().map(Pool::new).collect());
    match threads {
        1 => &pools[0],
        2 => &pools[1],
        4 => &pools[2],
        _ => &pools[3],
    }
}

/// Collects a tensor's exact bit pattern.
fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Asserts `f` produces the reference bits for every available micro-kernel
/// edition on 1/2/4/8-thread pools. `with_forced` pins the edition on the
/// calling thread; `gemm` resolves it once at entry and carries it into the
/// pool jobs, so the forced edition covers the parallel tiles too.
fn assert_matches_reference(want: &Tensor, f: impl Fn() -> Tensor) -> Result<(), TestCaseError> {
    for path in microkernel::available_paths() {
        for threads in [1usize, 2, 4, 8] {
            let got = pool(threads).install(|| microkernel::with_forced(path, &f));
            prop_assert_eq!(
                bits(&got),
                bits(want),
                "{} edition on a {}-thread pool differs from reference",
                path.label(),
                threads
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM == naive triple loop, bitwise, for all three layout
    /// variants, serial and pooled. `k` up to 600 crosses two KC blocks.
    #[test]
    fn gemm_variants_match_reference_bitwise(
        seed in 0u64..1000,
        m in 1usize..70,
        k in 1usize..600,
        n in 1usize..40,
    ) {
        let mut r = rng(seed);
        let a = Tensor::randn(&[m, k], &mut r);
        let b = Tensor::randn(&[k, n], &mut r);
        let at = Tensor::randn(&[k, m], &mut r);
        let bt = Tensor::randn(&[n, k], &mut r);

        assert_matches_reference(&reference::matmul(&a, &b), || a.matmul(&b))?;
        assert_matches_reference(&reference::matmul_tn(&at, &b), || at.matmul_tn(&b))?;
        assert_matches_reference(&reference::matmul_nt(&a, &bt), || a.matmul_nt(&bt))?;
    }

    /// GEMM handles zeros exactly: the dense path has no zero-skip, and
    /// adding the `±0.0` products must not flip any bit.
    #[test]
    fn gemm_with_zero_entries_matches_reference_bitwise(
        seed in 0u64..1000,
        m in 1usize..20,
        k in 1usize..50,
        n in 1usize..20,
    ) {
        let mut r = rng(seed);
        let mut a = Tensor::randn(&[m, k], &mut r);
        let b = Tensor::randn(&[k, n], &mut r);
        // Zero every third element, half of them negative zero.
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = if i % 2 == 0 { 0.0 } else { -0.0 };
            }
        }
        assert_matches_reference(&reference::matmul(&a, &b), || a.matmul(&b))?;
    }

    /// im2col-lowered conv3d forward == reference, bitwise, over random
    /// shapes and pads (including pad > kernel), serial and pooled.
    #[test]
    fn conv3d_forward_matches_reference_bitwise(
        seed in 0u64..1000,
        bn in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        d in 1usize..7,
        h in 1usize..7,
        w in 1usize..7,
        kd in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        pad in 0usize..3,
    ) {
        prop_assume!(kd <= d + 2 * pad && kh <= h + 2 * pad && kw <= w + 2 * pad);
        let mut r = rng(seed);
        let x = Tensor::randn(&[bn, c, d, h, w], &mut r);
        let wt = Tensor::randn(&[o, c, kd, kh, kw], &mut r);
        let want = reference::conv3d_forward(&x, &wt, pad);
        assert_matches_reference(&want, || conv3d_forward(&x, &wt, pad))?;
    }

    /// conv3d backward passes (input + weight gradients) == reference,
    /// bitwise, serial and pooled.
    #[test]
    fn conv3d_backward_matches_reference_bitwise(
        seed in 0u64..1000,
        bn in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        d in 1usize..6,
        h in 1usize..6,
        w in 1usize..6,
        kd in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        pad in 0usize..3,
    ) {
        prop_assume!(kd <= d + 2 * pad && kh <= h + 2 * pad && kw <= w + 2 * pad);
        let mut r = rng(seed);
        let x = Tensor::randn(&[bn, c, d, h, w], &mut r);
        let wt = Tensor::randn(&[o, c, kd, kh, kw], &mut r);
        let y = reference::conv3d_forward(&x, &wt, pad);
        let gout = Tensor::randn(y.shape(), &mut r);

        let want_gx = reference::conv3d_backward_input(&gout, &wt, x.shape(), pad);
        assert_matches_reference(&want_gx, || {
            conv3d_backward_input(&gout, &wt, x.shape(), pad)
        })?;

        let want_gw = reference::conv3d_backward_weight(&gout, &x, wt.shape(), pad);
        assert_matches_reference(&want_gw, || {
            conv3d_backward_weight(&gout, &x, wt.shape(), pad)
        })?;
    }
}

/// One fixed large case crossing every blocking boundary at once
/// (k > 2·KC, m > MC, n not a multiple of NR) — kept outside proptest so a
/// regression names a deterministic failure.
#[test]
fn gemm_blocking_boundaries_fixed_case() {
    let mut r = rng(1234);
    let a = Tensor::randn(&[97, 531], &mut r);
    let b = Tensor::randn(&[531, 37], &mut r);
    let want = reference::matmul(&a, &b);
    for path in microkernel::available_paths() {
        for threads in [1usize, 2, 4, 8] {
            let got = pool(threads).install(|| microkernel::with_forced(path, || a.matmul(&b)));
            assert_eq!(bits(&got), bits(&want), "{} threads {threads}", path.label());
        }
    }
}

/// Every MR×NR remainder edge: `m` around the MR=4 register tile, `n`
/// around one and two NR=8 panels, `k` straddling the KC=256 block. These
/// shapes exercise the partial-tile tails of each micro-kernel edition,
/// where a lane-count bug would first show.
#[test]
fn gemm_register_tile_remainders_match_reference_bitwise() {
    let mut r = rng(777);
    for m in [1usize, 3, 4, 5, 8, 9] {
        for n in [1usize, 7, 8, 9, 15, 16, 17] {
            for k in [1usize, 2, 255, 256, 257] {
                let a = Tensor::randn(&[m, k], &mut r);
                let b = Tensor::randn(&[k, n], &mut r);
                let want = reference::matmul(&a, &b);
                for path in microkernel::available_paths() {
                    let got = microkernel::with_forced(path, || a.matmul(&b));
                    assert_eq!(bits(&got), bits(&want), "{} m={m} n={n} k={k}", path.label());
                }
            }
        }
    }
}

/// Conv case large enough that the batched lowering splits the batch into
/// multiple column-buffer chunks (per-sample buffer ≈ 3.0M floats against
/// the 8M-element budget → chunks of 2 + 1 samples, a ragged tail). Locks
/// the accumulate-across-chunks fold for all three conv kernels against the
/// single-fold reference, bitwise, serial and pooled.
#[test]
fn conv3d_multi_chunk_batches_match_reference_bitwise() {
    let mut r = rng(9876);
    let x = Tensor::randn(&[3, 14, 20, 20, 20], &mut r);
    let w = Tensor::randn(&[2, 14, 3, 3, 3], &mut r);
    let pad = 1;
    let want = reference::conv3d_forward(&x, &w, pad);
    let gout = Tensor::randn(want.shape(), &mut r);
    let want_gx = reference::conv3d_backward_input(&gout, &w, x.shape(), pad);
    let want_gw = reference::conv3d_backward_weight(&gout, &x, w.shape(), pad);
    for threads in [1usize, 4] {
        let y = pool(threads).install(|| conv3d_forward(&x, &w, pad));
        assert_eq!(bits(&y), bits(&want), "forward threads {threads}");
        let gx = pool(threads).install(|| conv3d_backward_input(&gout, &w, x.shape(), pad));
        assert_eq!(bits(&gx), bits(&want_gx), "gx threads {threads}");
        let gw = pool(threads).install(|| conv3d_backward_weight(&gout, &x, w.shape(), pad));
        assert_eq!(bits(&gw), bits(&want_gw), "gw threads {threads}");
    }
}

/// Fixed conv case with asymmetric spatial dims and kernel.
#[test]
fn conv3d_asymmetric_fixed_case() {
    let mut r = rng(4321);
    let x = Tensor::randn(&[2, 3, 6, 4, 5], &mut r);
    let w = Tensor::randn(&[4, 3, 3, 1, 2], &mut r);
    for pad in 0..=1 {
        let want = reference::conv3d_forward(&x, &w, pad);
        let y = pool(4).install(|| conv3d_forward(&x, &w, pad));
        assert_eq!(bits(&y), bits(&want), "pad {pad}");
        let gout = Tensor::randn(want.shape(), &mut r);
        let want_gx = reference::conv3d_backward_input(&gout, &w, x.shape(), pad);
        let want_gw = reference::conv3d_backward_weight(&gout, &x, w.shape(), pad);
        let gx = pool(4).install(|| conv3d_backward_input(&gout, &w, x.shape(), pad));
        let gw = pool(4).install(|| conv3d_backward_weight(&gout, &x, w.shape(), pad));
        assert_eq!(bits(&gx), bits(&want_gx), "gx pad {pad}");
        assert_eq!(bits(&gw), bits(&want_gw), "gw pad {pad}");
    }
}
