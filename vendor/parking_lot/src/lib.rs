//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()` returns the guard directly (poisoning is converted to a panic,
//! which matches how this workspace uses the real crate — a poisoned lock
//! here always means an already-failing test).

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// Mutual exclusion with `parking_lot`'s unpoisoned interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard; the `Option` lets [`Condvar::wait`] move the std guard out
/// and back through a `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

/// Condition variable taking `&mut MutexGuard`, as `parking_lot` does.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
    }

    /// Waits with a timeout; returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader–writer lock with `parking_lot`'s unpoisoned interface.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
