//! Scoped threads with crossbeam's API shape, over `std::thread::scope`.
//!
//! Differences from `std`: the spawn closure receives the scope (so spawned
//! threads can spawn siblings), and a panic in an unjoined child surfaces
//! as an `Err` from [`scope`] instead of a propagated panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Panic payload of a child thread.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle; `'env` is the environment borrowed by spawned closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    // Owned (not borrowed) so the handle stays valid for any 'scope the
    // higher-ranked closure bound demands.
    panics: Arc<Mutex<Option<Box<dyn Any + Send + 'static>>>>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        Scope { inner: self.inner, panics: Arc::clone(&self.panics) }
    }
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the child; `Err` carries a generic payload if it panicked
    /// (the original payload is kept for the scope-level result).
    pub fn join(self) -> Result<T> {
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("scoped thread panicked")),
            Err(p) => Err(p),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread whose closure receives the scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = self.clone();
        let panics = Arc::clone(&self.panics);
        let inner = self.inner.spawn(move || match catch_unwind(AssertUnwindSafe(|| f(&me))) {
            Ok(v) => Some(v),
            Err(p) => {
                let mut slot = panics.lock().expect("panic store poisoned");
                if slot.is_none() {
                    *slot = Some(p);
                }
                None
            }
        });
        ScopedJoinHandle { inner }
    }
}

/// Runs `f` with a scope in which borrowed-environment threads can be
/// spawned; joins them all, returning `Err` with the first child panic.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics: Arc<Mutex<Option<Box<dyn Any + Send + 'static>>>> = Arc::new(Mutex::new(None));
    let result = std::thread::scope(|s| {
        let scope = Scope { inner: s, panics: Arc::clone(&panics) };
        f(&scope)
    });
    let first_panic = panics.lock().expect("panic store poisoned").take();
    match first_panic {
        Some(p) => Err(p),
        None => Ok(result),
    }
}
