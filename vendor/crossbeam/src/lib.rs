//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset of the real crate's API this workspace uses, built
//! on `std` primitives:
//!
//! * [`thread::scope`] / [`scope`] — scoped threads whose closures receive
//!   the scope (so they can spawn siblings), with crossbeam's
//!   panic-as-`Err` result semantics.
//! * [`channel::unbounded`] — an MPMC channel (cloneable receiver).
//! * [`deque`] — `Worker` / `Stealer` / `Injector` work-stealing deques
//!   (lock-based, identical observable semantics at the granularity the
//!   `dfpool` runtime schedules at).

pub mod thread;

pub use thread::scope;

pub mod channel {
    //! MPMC channel built over `std::sync::mpsc` with a mutex-shared
    //! receiver, matching `crossbeam_channel::unbounded`'s clone-and-share
    //! usage in this workspace.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Cloneable sending half.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Cloneable receiving half (consumers compete for messages).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("channel receiver poisoned").recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("channel receiver poisoned").try_recv()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam_deque` API shape.
    //!
    //! The implementation is a mutex-guarded `VecDeque` per queue rather
    //! than the lock-free Chase–Lev algorithm; the `dfpool` runtime
    //! schedules coarse chunk-sized tasks, so queue operations are far off
    //! the critical path and the simple implementation is observably
    //! equivalent (including the LIFO-owner / FIFO-stealer discipline).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }
    }

    /// Owner side of a work-stealing deque: LIFO push/pop at the front.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Stealer handle observing the opposite end of this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_front(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    /// Thief side: FIFO steal from the back.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_back() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injection queue feeding a pool of workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector poisoned").push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn scope_joins_and_returns() {
        let out = crate::scope(|s| {
            let h = s.spawn(|_| 40 + 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn scope_reports_unjoined_panic_as_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("child goes down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 7usize);
                h2.join().unwrap()
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }

    #[test]
    fn channel_fan_in_fan_out() {
        let (tx, rx) = crate::channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = Vec::new();
        crate::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut local = Vec::new();
                        while let Ok(v) = rx.recv() {
                            local.push(v);
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                got.extend(h.join().unwrap());
            }
        })
        .unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deque_owner_lifo_stealer_fifo() {
        let w: Worker<u32> = Worker::new_lifo();
        let st = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops most-recent first.
        assert_eq!(w.pop(), Some(3));
        // Thief steals oldest first.
        assert!(matches!(st.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
        assert!(st.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj: Injector<u8> = Injector::new();
        inj.push(1);
        inj.push(2);
        assert!(matches!(inj.steal(), Steal::Success(1)));
        assert!(matches!(inj.steal(), Steal::Success(2)));
        assert!(inj.steal().is_empty());
    }
}
