//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher`) backed by a plain `std::time::Instant` timing
//! loop: a short warm-up, then `sample_size` timed samples, reporting
//! mean/min per iteration to stderr. No statistical analysis, plots, or
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{p}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs the closure under the timing loop.
pub struct Bencher {
    sample_size: usize,
    /// (total over all samples, best single sample), per-iteration.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.result = Some((total, best));
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { sample_size, result: None };
    f(&mut b);
    match b.result {
        Some((total, best)) => {
            let mean = total / sample_size.max(1) as u32;
            eprintln!(
                "bench {label:<40} mean {mean:>12.3?}  min {best:>12.3?}  ({sample_size} samples)"
            );
        }
        None => eprintln!("bench {label:<40} (no iter() call)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), criterion: self, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, f);
        self
    }

    /// Accepted for CLI compatibility; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }
}
