//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a byte buffer with a read cursor, [`BytesMut`] a growable
//! write buffer; [`Buf`] / [`BufMut`] carry the little-endian accessors the
//! `h5lite` chunk format uses. No shared-slab zero-copy machinery — the
//! workspace only streams through buffers once.

use std::ops::Deref;

/// Read side: a consuming cursor over bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Splits off the next `n` bytes as their own buffer, advancing.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "copy_to_bytes out of bounds");
        let out = Bytes { data: self.chunk()[..n].to_vec(), pos: 0 };
        self.advance(n);
        out
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    pub fn len(&self) -> usize {
        self.remaining()
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_fields() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(-12.75);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -12.75);
        let tail = r.copy_to_bytes(3);
        assert_eq!(tail.to_vec(), b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_exposes_unread_remainder() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        b.advance(1);
        assert_eq!(&b[..], &[2, 3, 4]);
    }
}
