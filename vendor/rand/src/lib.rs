//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`]. The generator
//! is xoshiro256** seeded through SplitMix64 — statistically solid for the
//! simulations here and fully deterministic for a given seed, which is the
//! property the reproducibility tier-1 tests depend on. Streams are *not*
//! bit-compatible with upstream `rand`; nothing in the repo relies on the
//! upstream stream (tests only compare run-vs-run).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from the "standard" distribution (uniform over the
/// type's natural range; `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
