//! Hand-rolled `#[derive(Serialize, Deserialize)]` without syn/quote.
//!
//! Parses the item's `TokenStream` directly. Supported shapes — the ones
//! this workspace uses — are non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! attributes are not supported (none exist in-tree); generics produce a
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error tokens")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

/// Skips `#[...]` / `#![...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    _ => break,
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Extracts field names from a named-field brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found `{other}`")),
        }
        // Consume the type: everything until a top-level comma, tracking
        // angle-bracket depth (commas inside `<...>` belong to the type).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries in a tuple field list.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the vendored derive"));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::NamedStruct { name, fields: parse_named_fields(&inner)? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct { name, arity: count_tuple_fields(&inner) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum { name, variants: parse_variants(&inner)? })
            }
            other => Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::value::Value {{\n\
                         serde::value::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> =
                    (0..*arity).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
                format!("serde::value::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::value::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::value::Value {{ serde::value::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::value::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::value::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => serde::value::Value::Map(vec![(::std::string::String::from({vn:?}), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::value::Value::Map(vec![(::std::string::String::from({vn:?}), serde::value::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::value::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_fields_ctor(path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(serde::value::get({map_expr}, {f:?}).unwrap_or(&serde::value::Value::Null)).map_err(|e| serde::DeError(format!(\"{path}.{f}: {{}}\", e.0)))?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let ctor = gen_named_fields_ctor(name, fields, "__m");
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::value::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         let __m = __v.as_map().ok_or_else(|| serde::DeError::expected(\"map\", {name:?}))?;\n\
                         ::std::result::Result::Ok({ctor})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                     if __s.len() != {arity} {{ return ::std::result::Result::Err(serde::DeError::custom(format!(\"{name}: expected {arity} elements, got {{}}\", __s.len()))); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::value::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &serde::value::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?))"
                                )
                            } else {
                                let items: Vec<String> = (0..*arity)
                                    .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                                    .collect();
                                format!(
                                    "{{ let __s = __inner.as_seq().ok_or_else(|| serde::DeError::expected(\"sequence\", {vn:?}))?;\n\
                                       if __s.len() != {arity} {{ return ::std::result::Result::Err(serde::DeError::custom(format!(\"{name}::{vn}: expected {arity} elements, got {{}}\", __s.len()))); }}\n\
                                       ::std::result::Result::Ok({name}::{vn}({})) }}",
                                    items.join(", ")
                                )
                            };
                            Some(format!("{vn:?} => {body},"))
                        }
                        VariantKind::Struct(fields) => {
                            let ctor = gen_named_fields_ctor(&format!("{name}::{vn}"), fields, "__fm");
                            Some(format!(
                                "{vn:?} => {{ let __fm = __inner.as_map().ok_or_else(|| serde::DeError::expected(\"map\", {vn:?}))?;\n\
                                   ::std::result::Result::Ok({ctor}) }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::value::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         match __v {{\n\
                             serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(serde::DeError::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             serde::value::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __inner) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(serde::DeError::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(serde::DeError::expected(\"enum representation\", __other.kind())),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(e) => compile_error(&format!("#[derive(Serialize)]: {e}")),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&format!("#[derive(Deserialize)]: {e}")),
    }
}
