//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range strategies over ints and
//! floats, `collection::vec`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! and [`test_runner::TestCaseError`]. Case generation is deterministic:
//! each case's seed derives from the test name and case index, so failures
//! reproduce exactly.
//!
//! Unlike the real crate there is no shrinking — a failing case reports its
//! inputs as generated.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated a property; the run fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        pub fn reject(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Deterministic case-generation RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Seeds from the test name and case index so every case is reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        CaseRng { state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates values of `Self::Value` from a [`CaseRng`].
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut CaseRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut CaseRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{CaseRng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("prop_assert!(", stringify!($cond), ") failed"),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}: {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("prop_assume!(", stringify!($cond), ") failed"),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg); $($rest)* }
    };
    // Internal: expand each test fn against the chosen config.
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            // Cap rejections like the real runner, so a bad prop_assume!
            // cannot loop forever.
            let __max_attempts = __config.cases.saturating_mul(16).max(1024);
            while __passed < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "[{}] too many rejected cases ({} attempts)",
                    stringify!($name),
                    __attempts
                );
                let mut __rng = $crate::CaseRng::for_case(stringify!($name), __attempts);
                __attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "[{}] case #{} failed: {}\n  inputs: {}",
                            stringify!($name),
                            __attempts - 1,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
    // Without a config header.
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Int ranges stay in bounds.
        #[test]
        fn int_in_bounds(x in 3u64..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        /// Vec strategy respects element and size bounds.
        #[test]
        fn vec_in_bounds(v in crate::collection::vec(-1.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!((-1.0..1.0).contains(x));
            }
            prop_assert_eq!(v.len(), v.len());
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runs_the_macro_tests() {
        int_in_bounds();
        vec_in_bounds();
        assume_filters();
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::CaseRng::for_case("t", 7);
        let mut b = crate::CaseRng::for_case("t", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
