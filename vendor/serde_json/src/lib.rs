//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`] tree as JSON. Matches the
//! real crate's observable behaviour for the workspace's call sites:
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, with
//! non-finite floats serialized as `null`.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // real serde_json: NaN/inf are not representable
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Keep a trailing ".0" so the value round-trips as a float.
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((-(n as i128)) as i64));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let n: f64 = from_str("null").unwrap();
        assert!(n.is_nan());
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1usize, "a\nb".to_string()), (2, "c\"d".to_string())];
        let s = to_string(&v).unwrap();
        let back: Vec<(usize, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), vec![1.0f64, 2.5]);
        m.insert("y".to_string(), vec![]);
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains('\n'));
        let back: std::collections::BTreeMap<String, Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn slice_and_vec() {
        let bytes = to_vec(&("sig".to_string(), 4usize)).unwrap();
        let (s, n): (String, usize) = from_slice(&bytes).unwrap();
        assert_eq!((s.as_str(), n), ("sig", 4));
    }
}
