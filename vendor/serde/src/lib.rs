//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's visitor architecture, this vendored version
//! uses a concrete data-model tree ([`value::Value`]): `Serialize` renders
//! into it and `Deserialize` reads out of it. `serde_json` (also vendored)
//! prints/parses that tree. The derive macros generate impls against these
//! traits. The API kept is exactly what the workspace's `#[derive]`s and
//! `serde_json` call sites require.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the serde data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the serde data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite floats serialize as null
                    other => Err(DeError::expected("number", other.kind())),
                }
            }
        }
    )*};
}
de_float!(f32, f64);

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::path::PathBuf::from(String::from_value(v)?))
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::expected("map", "Duration"))?;
        let secs = u64::from_value(
            value::get(m, "secs").ok_or_else(|| DeError::custom("Duration missing secs"))?,
        )?;
        let nanos = u32::from_value(
            value::get(m, "nanos").ok_or_else(|| DeError::custom("Duration missing nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other.kind())),
        }
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // A struct field absent from the serialized map surfaces as Null;
        // decode it as the all-default array so structs can grow
        // fixed-size fields without invalidating previously written data.
        if matches!(v, Value::Null) {
            return Ok([T::default(); N]);
        }
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::expected("map", v.kind()))?;
        m.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::expected("map", v.kind()))?;
        m.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => Err(DeError::custom(format!(
                        "expected tuple of {} elements, got {}", $len, items.len()
                    ))),
                    other => Err(DeError::expected("sequence", other.kind())),
                }
            }
        }
    )+};
}
de_tuple!(
    (1; A: 0),
    (2; A: 0, B: 1),
    (3; A: 0, B: 1, C: 2),
    (4; A: 0, B: 1, C: 2, D: 3),
    (5; A: 0, B: 1, C: 2, D: 3, E: 4),
    (6; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);
