//! The concrete serde data model used by the vendored serde/serde_json.

/// A self-describing value tree (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers parse/serialize here (preserves full u64).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a key in an insertion-ordered map.
pub fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
