//! # deepfusion
//!
//! A from-scratch Rust reproduction of *"High-Throughput Virtual Screening
//! of Small Molecule Inhibitors for SARS-CoV-2 Protein Targets with Deep
//! Fusion Models"* (Stevenson et al., SC 2021, LLNL).
//!
//! The paper's system is rebuilt as a workspace of substrates; this crate
//! is the umbrella that re-exports the public API and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! ## Layer map
//!
//! | Layer | Crate | Replaces |
//! |-------|-------|----------|
//! | tensors + autodiff + optimizers | [`tensor`] | PyTorch |
//! | molecules, pockets, featurizers | [`chem`] | RDKit / OpenBabel / PDB |
//! | Vina docking + MM/GBSA | [`dock`] | AutoDock Vina / ConveyorLC |
//! | synthetic PDBbind + loaders | [`data`] | PDBbind-2019 |
//! | SG-CNN, 3D-CNN, fusion models | [`fusion`] | FAST |
//! | PB2 hyper-parameter search | [`hpo`] | Ray Tune + PB2 |
//! | jobs, faults, scheduler, h5lite | [`hts`] | Lassen + LSF + MPI + HDF5 |
//! | assays + campaign analysis | [`assay`] | LLNL/Sandia wet lab |
//! | metrics | [`metrics`] | scikit-learn-style evaluation |
//!
//! ## Quickstart
//!
//! ```no_run
//! use deepfusion::prelude::*;
//! use std::sync::Arc;
//!
//! // Generate a synthetic PDBbind and train every fusion variant.
//! let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 42));
//! let cfg = WorkflowConfig::tiny(42);
//! let mut models = train_all_variants(Arc::clone(&dataset), &cfg);
//! let core = dataset.indices(Group::Core);
//! let report = models.evaluate(&dataset, &core, EvalModel::Coherent);
//! println!("Coherent Fusion on core set: {report}");
//! ```
//!
//! ## Screening-funnel walkthrough
//!
//! The campaign funnel is `filter → fingerprint → surrogate → dock →
//! fusion` (see `docs/CHEMISTRY.md`). Its cheap outermost ring — the
//! ligand-only prefilter — runs without any target structure and is fast
//! enough to execute right here as a doctest:
//!
//! ```
//! use deepfusion::prelude::*;
//!
//! // 1. Drug-likeness gate: the ZINC druglike property rules, with
//! //    per-rule rejection accounting.
//! let filter = RuleFilter::zinc_druglike();
//! assert_eq!(filter.rules.len(), 10);
//!
//! // 2. Stream a small generated library through filter → fingerprint →
//! //    score. Chunked, bounded-memory, bit-deterministic at any
//! //    `dfpool` lane count.
//! let mut screen = ScreenConfig::new(Library::Chembl, 300, 42);
//! screen.chunk_size = 128;
//! let outcome = screen_library(&screen);
//! assert_eq!(outcome.funnel.evaluated, 300);
//! assert!(outcome.funnel.passed_filter > 0);
//! assert!(outcome.funnel.passed_filter < 300);
//!
//! // 3. The same pipeline as a campaign prefilter: ranked shortlist plus
//! //    contiguous compound ranges, ready to become `JobSpec`s.
//! let prefilter = PrefilterConfig::new(Library::Chembl, 300, 42, 24);
//! let picked = run_prefilter(&prefilter);
//! assert!(picked.shortlist.len() <= 24);
//! let ranges = picked.selection_ranges(8); // split dense runs at 8 compounds/job
//! let covered: u64 = ranges.iter().map(|&(_, n)| n).sum();
//! assert_eq!(covered, picked.shortlist.len() as u64);
//! assert!(ranges.iter().all(|&(_, n)| n <= 8));
//!
//! // 4. Fingerprints support similarity triage directly.
//! let a = Compound::materialize(Library::Chembl, picked.shortlist[0].index, 42);
//! let b = Compound::materialize(Library::Chembl, picked.shortlist[1].index, 42);
//! let cfg = FingerprintConfig::default();
//! let fa = Fingerprint::compute(&cfg, &a.mol);
//! let fb = Fingerprint::compute(&cfg, &b.mol);
//! let sim = fa.tanimoto(&fb);
//! assert!((0.0..=1.0).contains(&sim));
//! ```
//!
//! The expensive inner rings — docking, surrogate and fusion rescoring at
//! job scale — are demonstrated by `examples/virtual_screen.rs`, and the
//! streaming front-end on its own by `examples/library_filter.rs`.

pub use dfassay as assay;
pub use dfchem as chem;
pub use dfdata as data;
pub use dfdock as dock;
pub use dffusion as fusion;
pub use dfhpo as hpo;
pub use dfhts as hts;
pub use dfmetrics as metrics;
pub use dfsurrogate as surrogate;
pub use dftensor as tensor;

/// Convenience re-exports of the most used types across the workspace.
pub mod prelude {
    pub use dfassay::{
        figure4, figure5, run_assay, run_campaign as run_assay_campaign, table8, AssayConfig,
        CampaignConfig, CampaignOutput, Method,
    };
    pub use dfchem::{
        build_graph, ligand_score, parse_linnot, screen_library, voxelize, write_linnot,
        BindingPocket, Compound, CompoundId, Descriptors, Fingerprint, FingerprintConfig,
        GraphConfig, Library, Molecule, RejectionTally, RuleFilter, ScreenConfig, TargetSite,
        VoxelConfig,
    };
    pub use dfdata::{Group, PdbBind, PdbBindConfig};
    pub use dfdock::{
        dock, dock_flexible, mmgbsa_score, vina_score, ConveyorConfig, DockConfig, MmGbsaConfig,
    };
    pub use dffusion::{
        train_all_variants, Cnn3dConfig, EvalModel, FusionConfig, FusionKind, FusionModel,
        SgCnnConfig, TrainedModels, WorkflowConfig,
    };
    pub use dfhpo::{Pb2, Pb2Config, Pbt, Space};
    pub use dfhts::{
        run_active_campaign, run_campaign as run_screening_campaign, run_campaign_with, run_job,
        run_prefilter, simulate_campaign, ActiveLearningConfig, CampaignSim, FaultConfig,
        FusionScorerFactory, JobConfig, JobSpec, LassenModel, PrefilterConfig, SchedulerConfig,
        ScorerFactory, SyntheticPoseSource, TaskClass,
    };
    pub use dfmetrics::{PrCurve, RegressionReport};
    pub use dfsurrogate::{
        featurize_compound, SurrogateConfig, SurrogateRegistry, TrainConfig as SurrogateTrainConfig,
    };
}

/// Builds a [`dfhts::FusionScorerFactory`] from a trained workflow output,
/// wiring the coherent model's weights and featurization configs into the
/// screening stack.
pub fn fusion_scorer_from(models: &dffusion::TrainedModels) -> dfhts::FusionScorerFactory {
    dfhts::FusionScorerFactory {
        model: models.coherent.clone(),
        params: models.coherent_params.clone(),
        voxel: models.voxel,
        graph: models.config.sgcnn.graph_config(),
        batch_size: 56,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn crates_are_linked() {
        // Touch one symbol per substrate crate so the umbrella actually
        // links everything it advertises.
        let _ = dftensor::Tensor::zeros(&[1]);
        let _ = dfchem::Element::C.mass();
        let _ = dfmetrics::rmse(&[1.0], &[1.0]);
        let _ = dfhts::LassenModel::default();
        let _ = dfhpo::Pb2Config::default();
        let _ = dfassay::AssayConfig::default();
        let _ = dfdock::DockConfig::default();
        let _ = dfdata::PdbBindConfig::tiny();
        let _ = dffusion::SgCnnConfig::table2();
    }
}
