//! # deepfusion
//!
//! A from-scratch Rust reproduction of *"High-Throughput Virtual Screening
//! of Small Molecule Inhibitors for SARS-CoV-2 Protein Targets with Deep
//! Fusion Models"* (Stevenson et al., SC 2021, LLNL).
//!
//! The paper's system is rebuilt as a workspace of substrates; this crate
//! is the umbrella that re-exports the public API and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! ## Layer map
//!
//! | Layer | Crate | Replaces |
//! |-------|-------|----------|
//! | tensors + autodiff + optimizers | [`tensor`] | PyTorch |
//! | molecules, pockets, featurizers | [`chem`] | RDKit / OpenBabel / PDB |
//! | Vina docking + MM/GBSA | [`dock`] | AutoDock Vina / ConveyorLC |
//! | synthetic PDBbind + loaders | [`data`] | PDBbind-2019 |
//! | SG-CNN, 3D-CNN, fusion models | [`fusion`] | FAST |
//! | PB2 hyper-parameter search | [`hpo`] | Ray Tune + PB2 |
//! | jobs, faults, scheduler, h5lite | [`hts`] | Lassen + LSF + MPI + HDF5 |
//! | assays + campaign analysis | [`assay`] | LLNL/Sandia wet lab |
//! | metrics | [`metrics`] | scikit-learn-style evaluation |
//!
//! ## Quickstart
//!
//! ```no_run
//! use deepfusion::prelude::*;
//! use std::sync::Arc;
//!
//! // Generate a synthetic PDBbind and train every fusion variant.
//! let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 42));
//! let cfg = WorkflowConfig::tiny(42);
//! let mut models = train_all_variants(Arc::clone(&dataset), &cfg);
//! let core = dataset.indices(Group::Core);
//! let report = models.evaluate(&dataset, &core, EvalModel::Coherent);
//! println!("Coherent Fusion on core set: {report}");
//! ```

pub use dfassay as assay;
pub use dfchem as chem;
pub use dfdata as data;
pub use dfdock as dock;
pub use dffusion as fusion;
pub use dfhpo as hpo;
pub use dfhts as hts;
pub use dfmetrics as metrics;
pub use dftensor as tensor;

/// Convenience re-exports of the most used types across the workspace.
pub mod prelude {
    pub use dfassay::{
        figure4, figure5, run_assay, run_campaign as run_assay_campaign, table8, AssayConfig,
        CampaignConfig, CampaignOutput, Method,
    };
    pub use dfchem::{
        build_graph, parse_linnot, voxelize, write_linnot, BindingPocket, Compound, CompoundId,
        Descriptors, GraphConfig, Library, Molecule, TargetSite, VoxelConfig,
    };
    pub use dfdata::{Group, PdbBind, PdbBindConfig};
    pub use dfdock::{
        dock, dock_flexible, mmgbsa_score, vina_score, ConveyorConfig, DockConfig, MmGbsaConfig,
    };
    pub use dffusion::{
        train_all_variants, Cnn3dConfig, EvalModel, FusionConfig, FusionKind, FusionModel,
        SgCnnConfig, TrainedModels, WorkflowConfig,
    };
    pub use dfhpo::{Pb2, Pb2Config, Pbt, Space};
    pub use dfhts::{
        run_campaign as run_screening_campaign, run_job, simulate_campaign, CampaignSim,
        FaultConfig, FusionScorerFactory, JobConfig, JobSpec, LassenModel, SchedulerConfig,
        ScorerFactory, SyntheticPoseSource,
    };
    pub use dfmetrics::{PrCurve, RegressionReport};
}

/// Builds a [`dfhts::FusionScorerFactory`] from a trained workflow output,
/// wiring the coherent model's weights and featurization configs into the
/// screening stack.
pub fn fusion_scorer_from(models: &dffusion::TrainedModels) -> dfhts::FusionScorerFactory {
    dfhts::FusionScorerFactory {
        model: models.coherent.clone(),
        params: models.coherent_params.clone(),
        voxel: models.voxel,
        graph: models.config.sgcnn.graph_config(),
        batch_size: 56,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn crates_are_linked() {
        // Touch one symbol per substrate crate so the umbrella actually
        // links everything it advertises.
        let _ = dftensor::Tensor::zeros(&[1]);
        let _ = dfchem::Element::C.mass();
        let _ = dfmetrics::rmse(&[1.0], &[1.0]);
        let _ = dfhts::LassenModel::default();
        let _ = dfhpo::Pb2Config::default();
        let _ = dfassay::AssayConfig::default();
        let _ = dfdock::DockConfig::default();
        let _ = dfdata::PdbBindConfig::tiny();
        let _ = dffusion::SgCnnConfig::table2();
    }
}
